"""The simulation harness reproducing the paper's evaluation.

* :mod:`repro.simulation.missfree` -- the trace-driven miss-free
  hoard-size simulations of section 5.2.1 (Figures 2 and 3): replay a
  trace, cut it into fixed disconnection windows (24 hours or 7 days),
  and at each boundary compare the working set, SEER's clustering
  manager and strict LRU.
* :mod:`repro.simulation.live` -- the live-deployment measurements of
  section 5.2.2 (Tables 3-5): run the connectivity schedule, fill the
  hoard before each disconnection, count misses by severity and the
  time to first miss (active time only).
* :mod:`repro.simulation.stats` -- means, medians, and the 99 %
  confidence intervals the paper reports.

``SIM_PARAMETERS`` is the parameter set the harness uses: the paper's
published constants, with two scale corrections for a synthetic world
~100x smaller than the real deployments (a 5 % frequent-file threshold
in place of 1 %, and normalized clustering thresholds); both are
documented in DESIGN.md.
"""

from repro.core.parameters import SeerParameters
from repro.observer.control_file import ControlConfig
from repro.simulation.live import (
    DisconnectionOutcome,
    LiveResult,
    simulate_live_usage,
)
from repro.simulation.missfree import (
    MissFreeResult,
    WindowResult,
    simulate_miss_free,
)
from repro.simulation.population import (
    PopulationCellResult,
    simulate_population_cell,
)
from repro.simulation.stats import SummaryStatistics, ci99_halfwidth, summarize
from repro.simulation.runner import (
    RunStats,
    ShardOutcome,
    ShardSpec,
    execute_shard,
    figure2_grid,
    population_grid,
    reproduction_grid,
    run_shards,
)
from repro.simulation.store import (
    CheckpointEntry,
    CompactionStats,
    JsonDirStore,
    SqliteStore,
    StateStore,
    open_store,
)

SIM_PARAMETERS = SeerParameters(
    frequent_file_fraction=0.05,
    frequent_file_minimum_accesses=500,
    normalize_shared_counts=True,
    kf_fraction=0.55,
)


def simulation_control() -> ControlConfig:
    """The administrator's control file for simulated deployments.

    Section 4.3: critical system files and directories are listed in a
    control file, left outside SEER's control, and always hoarded.  A
    real deployment lists the system binary and library directories
    there (they are small, and no machine is usable without them), so
    the simulated deployments do too.
    """
    config = ControlConfig()
    config.critical_prefixes |= {"/bin", "/lib"}
    return config

__all__ = [
    "CheckpointEntry",
    "CompactionStats",
    "DisconnectionOutcome",
    "JsonDirStore",
    "LiveResult",
    "MissFreeResult",
    "PopulationCellResult",
    "RunStats",
    "SIM_PARAMETERS",
    "ShardOutcome",
    "ShardSpec",
    "SqliteStore",
    "StateStore",
    "SummaryStatistics",
    "WindowResult",
    "ci99_halfwidth",
    "execute_shard",
    "figure2_grid",
    "open_store",
    "population_grid",
    "reproduction_grid",
    "run_shards",
    "simulate_live_usage",
    "simulate_miss_free",
    "simulate_population_cell",
    "summarize",
]
