"""Live-usage simulation (paper section 5.2.2, Tables 3-5).

Replays a machine's trace against its connectivity schedule.  Before
each disconnection the hoard is filled to the configured budget; during
the disconnection, references to files absent from the hoard are hoard
misses.  Misses are recorded the way the deployment recorded them:

* *manual* misses carry a severity derived from the missed file's role
  in its project (section 4.4's 0-4 scale).  Following the paper's
  observation that users are peripherally aware of hoard contents and
  switch away from unhoarded projects, only the first miss per project
  per disconnection is recorded manually;
* *automatic* misses are accesses to files SEER knows to exist but did
  not hoard, deduplicated per file -- they "tend to exceed the
  user-reported count" here just as in the paper.

Time to first miss is measured in *active* hours: suspension time is
discarded (section 5.1.1), and disconnections and reconnections
shorter than 15 minutes are squashed first.

With a fault profile (docs/fault-injection.md) the replay leaves the
happy path: the hoard fill before a disconnection can be interrupted
partway -- the user walks away before the fill completes, so the
laptop leaves with an incomplete hoard -- individual fills can lose
files to flaky server reads, and reconnection synchronization is
retried under the bounded-attempts backoff policy.  All injected
faults are counted in the seer's metrics (``faults.*``), so they show
up under the CLI's ``--metrics``.  With no profile (or the inert
``none`` profile) the replay is byte-identical to a fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.hoard import HoardSelection, MissSeverity
from repro.core.parameters import SeerParameters
from repro.core.seer import Seer
from repro.faults import FaultInjector, FaultProfile, profile_from_name
from repro.fs.paths import dirname
from repro.replication.base import RetryPolicy
from repro.simulation.missfree import (
    _is_relevant_reference,
    build_investigators,
    make_size_function,
)
from repro.simulation.stats import SummaryStatistics, summarize
from repro.tracing.events import Operation
from repro.workload.generator import GeneratedTrace
from repro.workload.projects import FileRole
from repro.workload.sessions import (
    HOUR,
    Period,
    PeriodKind,
    Schedule,
    squash_brief_periods,
)

#: Our synthetic activity runs at a smaller byte scale than the real
#: deployments: machine F's weekly working set here is ~2.2 MB where
#: the paper reports it often exceeded 50 MB.  Hoard budgets are
#: divided by this single global factor (~50 MB / ~2.2 MB) so that "a
#: 50 MB hoard" stresses each simulated user about as much as it
#: stressed the real one: comfortable everywhere except machine F,
#: which reproduces its published ~13 % failed-disconnection rate.
HOARD_SCALE_DIVISOR = 23.0

_ROLE_SEVERITY = {
    FileRole.STARTUP: MissSeverity.COMPUTER_UNUSABLE,
    FileRole.PRIMARY: MissSeverity.TASK_CHANGED,
    FileRole.AUXILIARY: MissSeverity.ACTIVITY_MODIFIED,
    FileRole.INFORMATIONAL: MissSeverity.LITTLE_TROUBLE,
    FileRole.PRELOAD: MissSeverity.PRELOAD_ONLY,
    FileRole.TOOL: MissSeverity.ACTIVITY_MODIFIED,
}


@dataclass
class RecordedMiss:
    path: str
    time: float
    active_hours_in: float
    severity: Optional[MissSeverity]   # None for automatic-only
    automatic: bool


@dataclass
class DisconnectionOutcome:
    """One disconnection period's results."""

    period: Period
    active_hours: float
    hoard_bytes: int
    manual_misses: List[RecordedMiss] = field(default_factory=list)
    automatic_misses: List[RecordedMiss] = field(default_factory=list)
    #: The hoard fill before this disconnection was cut short by an
    #: injected surprise disconnection (always False without faults).
    fill_interrupted: bool = False

    @property
    def failed(self) -> bool:
        return bool(self.manual_misses)

    def severities(self) -> Set[MissSeverity]:
        return {m.severity for m in self.manual_misses if m.severity is not None}

    def first_miss_hours(self, severity: Optional[MissSeverity] = None,
                         automatic: bool = False) -> Optional[float]:
        pool = self.automatic_misses if automatic else [
            m for m in self.manual_misses
            if severity is None or m.severity == severity]
        if not pool:
            return None
        return min(m.active_hours_in for m in pool)


@dataclass
class LiveResult:
    """The full live measurement of one machine."""

    machine: str
    hoard_budget: int
    outcomes: List[DisconnectionOutcome] = field(default_factory=list)
    # Ingestion-pipeline counters captured at the end of the run
    # (see repro.observability); surfaced by the CLI's --metrics flag.
    metrics: Optional[Dict[str, float]] = None

    # -- Table 3 -------------------------------------------------------
    def disconnection_durations_hours(self) -> List[float]:
        return [o.period.duration_hours for o in self.outcomes]

    def disconnection_statistics(self) -> SummaryStatistics:
        return summarize(self.disconnection_durations_hours())

    # -- Table 4 -------------------------------------------------------
    def failed_disconnections(self) -> List[DisconnectionOutcome]:
        return [o for o in self.outcomes if o.failed]

    def failures_at_severity(self, severity: MissSeverity) -> int:
        return sum(1 for o in self.outcomes if severity in o.severities())

    def failures_any_severity(self) -> int:
        return len(self.failed_disconnections())

    def automatic_detections(self) -> int:
        return sum(1 for o in self.outcomes if o.automatic_misses)

    # -- Table 5 -------------------------------------------------------
    def first_miss_hours(self, severity: Optional[MissSeverity] = None,
                         automatic: bool = False) -> List[float]:
        values = [o.first_miss_hours(severity, automatic) for o in self.outcomes]
        return [v for v in values if v is not None]


def scaled_hoard_budget(trace: GeneratedTrace,
                        hoard_size_bytes: Optional[int] = None) -> int:
    """Scale the paper's hoard size to the synthetic activity scale."""
    if hoard_size_bytes is None:
        hoard_size_bytes = trace.machine.hoard_size_bytes
    return max(int(hoard_size_bytes / HOARD_SCALE_DIVISOR), 1)


def _severity_for(trace: GeneratedTrace, path: str) -> Optional[MissSeverity]:
    role = trace.roles.get(path)
    if role is None:
        return None
    return _ROLE_SEVERITY[role]


def _active_hours_in(period: Period, schedule: Schedule, when: float) -> float:
    """Active (non-suspended) hours from disconnection start to *when*."""
    suspended = sum(
        max(0.0, min(s.end, when) - max(s.start, period.start))
        for s in schedule.suspensions()
        if s.start < when and s.end > period.start)
    return max(0.0, (when - period.start - suspended)) / HOUR


def _faulted_fill(injector: FaultInjector, selection: HoardSelection,
                  sizes: Callable[[str], int]) -> Tuple[Set[str], int, bool]:
    """Apply fill faults to a hoard selection.

    Returns (files actually hoarded, their bytes, interrupted?).  The
    fill transfers files in sorted order; a surprise disconnection cuts
    it at an injector-chosen point ("the user walks away", paper
    section 5.2.2) and a flaky read silently loses one file.  With no
    fault fired the original selection passes through untouched.
    """
    ordered = sorted(selection.files)
    cut = injector.fill_interruption(len(ordered))
    kept: Set[str] = set()
    interrupted = False
    for index, path in enumerate(ordered):
        if cut is not None and index >= cut:
            interrupted = True
            injector.note_partial_fill(
                sum(sizes(missing) for missing in ordered[index:]))
            break
        if injector.read_fails():
            continue
        kept.add(path)
    if kept == selection.files:
        return selection.files, selection.total_bytes, False
    return kept, sum(sizes(path) for path in kept), interrupted


def _reconnect_sync_attempts(injector: FaultInjector,
                             policy: RetryPolicy) -> None:
    """Drive reintegration attempts through the retry/backoff policy."""
    for attempt in range(1, policy.max_attempts + 1):
        if not injector.sync_attempt_fails():
            return
        if attempt >= policy.max_attempts:
            injector.note_sync_gave_up()
            return
        injector.note_retry(policy.backoff_for(attempt))


def simulate_live_usage(trace: GeneratedTrace,
                        parameters: Optional[SeerParameters] = None,
                        hoard_budget: Optional[int] = None,
                        use_investigators: bool = False,
                        size_seed: int = 0,
                        fault_profile: Union[FaultProfile, str, None] = None,
                        fault_seed: int = 0) -> LiveResult:
    """Run the live deployment measurement for one machine.

    *fault_profile* (a :class:`~repro.faults.FaultProfile` or its
    name) turns on deterministic fault injection seeded by
    *fault_seed*; ``None`` and the inert ``none`` profile reproduce
    the fault-free replay exactly.
    """
    if parameters is None:
        from repro.simulation import SIM_PARAMETERS
        parameters = SIM_PARAMETERS
    budget = hoard_budget if hoard_budget is not None \
        else scaled_hoard_budget(trace)
    sizes = make_size_function(trace, size_seed)
    investigators = build_investigators(trace) if use_investigators else []
    from repro.simulation import simulation_control
    seer = Seer(kernel=trace.kernel, parameters=parameters,
                control=simulation_control(),
                investigators=investigators, attach=False)

    if isinstance(fault_profile, str):
        fault_profile = profile_from_name(fault_profile)
    injector: Optional[FaultInjector] = None
    retry_policy = RetryPolicy()
    if fault_profile is not None and not fault_profile.inert:
        injector = FaultInjector(fault_profile, seed=fault_seed,
                                 metrics=seer.metrics)
        retry_policy = RetryPolicy.from_profile(fault_profile)

    schedule = squash_brief_periods(
        trace.schedule, minimum_seconds=parameters.minimum_disconnection_seconds)
    result = LiveResult(machine=trace.machine.name, hoard_budget=budget)

    record_index = 0
    records = trace.records
    for period in schedule.periods:
        if period.kind is PeriodKind.SUSPENDED:
            continue
        if period.kind is PeriodKind.CONNECTED:
            while record_index < len(records) and \
                    records[record_index].time < period.end:
                seer.observer.handle_record(records[record_index])
                record_index += 1
            continue

        # Disconnection imminent: recompute the hoard (section 2).
        selection = seer.build_hoard(budget, sizes=sizes)
        hoard_files: Set[str] = selection.files
        hoard_bytes = selection.total_bytes
        fill_interrupted = False
        if injector is not None:
            hoard_files, hoard_bytes, fill_interrupted = \
                _faulted_fill(injector, selection, sizes)
        seer.disconnect()
        outcome = DisconnectionOutcome(
            period=period,
            active_hours=trace.schedule.active_disconnected_time(period) / HOUR,
            hoard_bytes=hoard_bytes,
            fill_interrupted=fill_interrupted)
        created_locally: Set[str] = set()
        missed_projects: Set[str] = set()
        missed_files: Set[str] = set()
        known_before = seer.correlator.known_files() | selection.files \
            | seer.always_hoard_paths()
        while record_index < len(records) and \
                records[record_index].time < period.end:
            record = records[record_index]
            record_index += 1
            seer.observer.handle_record(record)
            if record.op is Operation.CREATE and record.ok:
                created_locally.add(record.path)
                continue
            if not _is_relevant_reference(record, trace):
                continue
            path = record.path
            if path in hoard_files or path in created_locally or \
                    path in missed_files:
                continue
            if path not in known_before:
                continue   # a genuinely new file, not a hoarding failure
            missed_files.add(path)
            active_in = _active_hours_in(period, trace.schedule, record.time)
            # Automatic detection: SEER knew the file existed.
            outcome.automatic_misses.append(RecordedMiss(
                path=path, time=record.time, active_hours_in=active_in,
                severity=None, automatic=True))
            seer.miss_log.record_automatic(path, record.time)
            # Manual recording: the user notices the first miss in each
            # project, records it, and switches away (section 5.2.2).
            severity = _severity_for(trace, path)
            project = dirname(path)
            if severity is not None and project not in missed_projects:
                missed_projects.add(project)
                outcome.manual_misses.append(RecordedMiss(
                    path=path, time=record.time, active_hours_in=active_in,
                    severity=severity, automatic=False))
                seer.miss_log.record_manual(path, record.time, severity)
        seer.reconnect()
        if injector is not None:
            _reconnect_sync_attempts(injector, retry_policy)
        result.outcomes.append(outcome)
    # Records stamped after the final schedule period still belong to
    # the trace: feed them to the observer so end-of-trace correlator
    # state and ingest metrics do not undercount.
    while record_index < len(records):
        seer.observer.handle_record(records[record_index])
        record_index += 1
    result.metrics = seer.metrics.snapshot()
    return result
