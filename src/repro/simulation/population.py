"""Population grid cells: one machine's full SEER-vs-baseline scorecard.

Fleet-scale sweeps (ROADMAP item 5) push thousands of synthetic
machines through the parallel runner.  Checkpointing a full
:class:`~repro.simulation.missfree.MissFreeResult` plus
:class:`~repro.simulation.live.LiveResult` per machine would make the
grid join O(cells x windows); a ``population`` cell instead reduces
both replays *inside the worker* to this flat scorecard, so checkpoint
payloads stay a few hundred bytes and population aggregation is
O(machines) no matter how long the traces run.

Each cell runs two passes over one generated trace:

* a **miss-free pass** (:func:`~repro.simulation.missfree
  .simulate_miss_free` with every baseline enabled) scoring SEER,
  strict LRU, SPY UTILITY and CODA over fixed simulated disconnection
  windows (paper section 5.2.1);
* a **live pass** (:func:`~repro.simulation.live.simulate_live_usage`)
  replaying the machine's own calibrated disconnection schedule --
  optionally under fault injection -- for the deployment-effectiveness
  measures of Tables 4-5 (failed disconnections, automatic detections,
  time to first miss).

CODA runs the BOUNDED variant with *no hoard profiles loaded*: the
paper's finding (section 6.2) is precisely that CODA's formula needs
ongoing hand management nobody performs, so the fleet-scale comparison
measures CODA the way a population would actually run it -- unmanaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.parameters import SeerParameters
from repro.simulation.live import LiveResult, simulate_live_usage
from repro.simulation.missfree import MissFreeResult, simulate_miss_free
from repro.workload.generator import GeneratedTrace

__all__ = [
    "PopulationCellResult",
    "simulate_population_cell",
]

#: Snapshot keys with these suffixes come from spans/timers; merging
#: two passes' snapshots only sums the plain counters (the same rule
#: the runner applies when absorbing worker snapshots).
_NON_COUNTER_SUFFIXES = (".count", ".seconds", ".per_second", ".calls",
                         ".total_seconds", ".mean_seconds")


@dataclass(frozen=True)
class PopulationCellResult:
    """One machine's reduced scorecard (one ``population`` grid cell).

    Sizes are window means in bytes; effectiveness counts come from
    the live replay of the machine's own disconnection schedule.  The
    profile-level fields (``activity``, ``n_disconnections``,
    ``uses_investigators``) ride along so population reports can
    stratify without re-sampling profiles.
    """

    machine: str
    activity: float
    n_disconnections: int          # profile-level (full measured span)
    uses_investigators: bool
    hoard_budget: int
    window_seconds: float
    windows: int                   # evaluated miss-free windows
    referenced_files: int          # summed over evaluated windows
    mean_working_set: float
    mean_seer: float
    mean_lru: float
    mean_spy: float
    mean_coda: float
    disconnections: int            # replayed in the live pass
    failed_disconnections: int
    automatic_detections: int
    median_first_miss_hours: float  # 0.0 when no miss ever occurred
    # Ingestion-pipeline counters merged across both passes
    # (see repro.observability); surfaced by the CLI's --metrics flag.
    metrics: Optional[Dict[str, float]] = None

    @property
    def lru_to_seer_ratio(self) -> float:
        return self.mean_lru / self.mean_seer if self.mean_seer else 0.0

    @property
    def failure_rate(self) -> float:
        """Fraction of replayed disconnections that suffered a miss."""
        if self.disconnections == 0:
            return 0.0
        return self.failed_disconnections / self.disconnections


def _median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _merged_metrics(miss: MissFreeResult,
                    live: LiveResult) -> Dict[str, float]:
    """One snapshot for the cell: miss-free pass counters plus the
    live pass's plain counters (fault injection reports through the
    live pass, so ``faults.*`` must survive the merge)."""
    merged: Dict[str, float] = dict(miss.metrics or {})
    for name, value in (live.metrics or {}).items():
        if name.endswith(_NON_COUNTER_SUFFIXES):
            continue
        merged[name] = merged.get(name, 0.0) + value
    return merged


def simulate_population_cell(trace: GeneratedTrace,
                             window_seconds: float,
                             parameters: Optional[SeerParameters] = None,
                             use_investigators: bool = False,
                             size_seed: int = 0,
                             fault_profile: Optional[str] = None,
                             fault_seed: int = 0) -> PopulationCellResult:
    """Run both passes for one machine and reduce them to a scorecard.

    Deterministic for a fixed trace and arguments: both passes consume
    only seeded randomness, so the same cell computed serially, in a
    worker process, or restored from a checkpoint is byte-identical.
    """
    miss = simulate_miss_free(trace, window_seconds, parameters=parameters,
                              use_investigators=use_investigators,
                              seed=size_seed, include_spy=True,
                              include_coda=True)
    live = simulate_live_usage(trace, parameters=parameters,
                               use_investigators=use_investigators,
                               size_seed=size_seed,
                               fault_profile=fault_profile,
                               fault_seed=fault_seed)
    first_miss: List[float] = live.first_miss_hours()
    return PopulationCellResult(
        machine=trace.machine.name,
        activity=trace.machine.activity,
        n_disconnections=trace.machine.n_disconnections,
        uses_investigators=use_investigators,
        hoard_budget=live.hoard_budget,
        window_seconds=window_seconds,
        windows=len(miss.windows),
        referenced_files=sum(w.referenced_files for w in miss.windows),
        mean_working_set=miss.mean_working_set,
        mean_seer=miss.mean_seer,
        mean_lru=miss.mean_lru,
        mean_spy=miss.mean_spy,
        mean_coda=miss.mean_coda,
        disconnections=len(live.outcomes),
        failed_disconnections=live.failures_any_severity(),
        automatic_detections=live.automatic_detections(),
        median_first_miss_hours=_median(first_miss),
        metrics=_merged_metrics(miss, live),
    )
