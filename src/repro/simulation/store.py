"""Pluggable checkpoint state stores for the experiment runner.

The PR 3 runner persisted one JSON file per grid cell.  That layout is
ideal for a handful of cells (human-inspectable, trivially atomic) and
wrong for fleet-scale grids -- a (10^4 users x seeds x periods) sweep
would create tens of thousands of files and pay a directory operation
per cell.  This module separates the *stable store interface* from the
interchangeable *persistence mechanisms* behind it:

* :class:`StateStore` -- the abstract interface: ``open`` / ``put`` /
  ``get`` / ``iter_completed`` / ``compact`` / ``close``, keyed by
  :attr:`ShardSpec.shard_id`.  Every entry carries a schema version and
  a payload fingerprint (:func:`repro.simulation.serde.payload_fingerprint`)
  so corruption is detected, counted and recomputed -- never silently
  reused.
* :class:`JsonDirStore` -- one ``<shard_id>.json`` per cell, written
  atomically (temp file + ``os.replace``).  Byte-compatible with the
  PR 3 layout: checkpoints written before this module existed resume
  cleanly, and files it writes are identical to the old ones.
* :class:`SqliteStore` -- a single ``checkpoints.sqlite`` file in WAL
  mode with batched transactional writes.  O(1) files on disk for any
  grid size, crash-safe (a kill mid-transaction rolls back cleanly on
  the next open), and a torn/truncated database file is quarantined
  and rebuilt instead of crashing the sweep.

Both backends maintain the same counters (``writes``,
``batched_txns``, ``corrupt_discarded``, ``compacted``) and mirror
them into the ``runner.store.*`` metric family when given a
:class:`~repro.observability.Metrics`.  ``docs/state-store.md`` holds
the backend matrix and the crash-safety guarantees;
``tests/simulation/test_store_differential.py`` proves the backends
byte-equivalent on randomized grids.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import tempfile
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, ClassVar, Dict, Iterable, Iterator, List,
                    Optional, Set, Tuple)

from repro.observability import Metrics
from repro.simulation.serde import payload_fingerprint

if TYPE_CHECKING:
    from repro.simulation.runner import ShardSpec

#: Version of the checkpoint payload schema.  Bump when the payload
#: shape changes; entries recorded under another version are treated
#: as stale and recomputed, never reinterpreted.
SCHEMA_VERSION = 1

#: Backend names accepted by :func:`open_store` and ``--store``.
BACKENDS: Tuple[str, ...] = ("json", "sqlite")


def spec_to_data(spec: "ShardSpec") -> Dict:
    """JSON-safe dictionary form of a spec (tuples become lists)."""
    data = dataclasses.asdict(spec)
    data["parameter_overrides"] = [
        [name, value] for name, value in spec.parameter_overrides]
    return data


@dataclass
class CheckpointEntry:
    """One validated checkpoint, as a backend hands it back."""

    shard_id: str
    spec_data: Dict
    result: Dict
    elapsed_seconds: float
    schema_version: int = SCHEMA_VERSION
    fingerprint: str = ""


@dataclass
class CompactionStats:
    """What one :meth:`StateStore.compact` pass removed."""

    removed_superseded: int = 0
    removed_corrupt: int = 0
    removed_stale: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def removed_total(self) -> int:
        return (self.removed_superseded + self.removed_corrupt +
                self.removed_stale)


class StateStore:
    """Abstract checkpoint store, keyed by ``ShardSpec.shard_id``.

    Subclasses implement the persistence mechanism; this base class
    owns the counters and their mirror into the ``runner.store.*``
    metric family, so every backend reports identically under
    ``--metrics``.
    """

    backend: ClassVar[str] = "abstract"

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics
        self.writes = 0
        self.batched_txns = 0
        self.corrupt_discarded = 0
        self.compacted = 0

    # -- lifecycle -----------------------------------------------------
    def open(self) -> "StateStore":
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "StateStore":
        return self.open()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the stable interface ------------------------------------------
    def put(self, spec: "ShardSpec", result_data: Dict,
            elapsed_seconds: float) -> None:
        """Persist one completed cell (replacing any earlier entry)."""
        raise NotImplementedError

    def get(self, spec: "ShardSpec") -> Optional[CheckpointEntry]:
        """Reload one cell, or None if missing or unusable.

        An entry is trusted only when it parses, carries the current
        :data:`SCHEMA_VERSION`, matches its recorded payload
        fingerprint, and records exactly the spec being asked for.
        Anything present but unusable counts toward
        :attr:`corrupt_discarded` -- a resumed sweep reports how many
        checkpoints it threw away instead of dropping them silently.
        """
        raise NotImplementedError

    def iter_completed(self) -> Iterator[CheckpointEntry]:
        """Every valid entry in the store, in shard-id order."""
        raise NotImplementedError

    def compact(self,
                keep: Optional[Iterable[str]] = None) -> CompactionStats:
        """Garbage-collect superseded, corrupt and stale entries.

        *keep*, when given, is the set of shard ids the current grid
        still wants; entries outside it are stale leftovers from a
        differently-shaped sweep and are removed.  After compaction
        every kept entry still loads -- ``--resume`` restores exactly
        the same cells, from less disk.
        """
        raise NotImplementedError

    def flush(self) -> None:
        """Make every buffered write durable (no-op unless batching)."""

    def bytes_on_disk(self) -> int:
        """Bytes the store currently occupies on disk."""
        raise NotImplementedError

    # -- shared accounting ---------------------------------------------
    def _count_write(self) -> None:
        self.writes += 1
        if self.metrics is not None:
            self.metrics.incr("runner.store.writes")

    def _count_txn(self) -> None:
        self.batched_txns += 1
        if self.metrics is not None:
            self.metrics.incr("runner.store.batched_txns")

    def _count_corrupt(self, discarded: int = 1) -> None:
        self.corrupt_discarded += discarded
        if self.metrics is not None:
            self.metrics.incr("runner.store.corrupt_discarded", discarded)

    def _count_compacted(self, removed: int) -> None:
        self.compacted += removed
        if self.metrics is not None:
            self.metrics.incr("runner.store.compacted", removed)

    def _validate(self, entry: CheckpointEntry,
                  spec: Optional["ShardSpec"]) -> bool:
        """Shared trust checks; counts (but does not raise on) failures."""
        if entry.schema_version != SCHEMA_VERSION:
            self._count_corrupt()
            return False
        if not isinstance(entry.result, dict):
            self._count_corrupt()
            return False
        if entry.fingerprint and \
                payload_fingerprint(entry.result) != entry.fingerprint:
            self._count_corrupt()
            return False
        if spec is not None and entry.spec_data != spec_to_data(spec):
            self._count_corrupt()
            return False
        return True


# ----------------------------------------------------------------------
# JSON directory backend (PR 3 byte-compatible)
# ----------------------------------------------------------------------
class JsonDirStore(StateStore):
    """One atomically-written ``<shard_id>.json`` file per cell.

    The on-disk bytes are identical to the PR 3 runner's checkpoints
    (same payload keys, same ``json.dump`` formatting), so old result
    directories resume under this store and new ones resume under old
    code.  The payload therefore carries no stored fingerprint; the
    parse + format + spec-match checks stand in for it, exactly as
    before -- except that discards are now *counted*.
    """

    backend = "json"

    def __init__(self, root: str,
                 metrics: Optional[Metrics] = None) -> None:
        super().__init__(metrics)
        self.root = root

    def open(self) -> "JsonDirStore":
        os.makedirs(self.root, exist_ok=True)
        return self

    def close(self) -> None:
        pass

    def path_for(self, shard_id: str) -> str:
        return os.path.join(self.root, shard_id + ".json")

    def put(self, spec: "ShardSpec", result_data: Dict,
            elapsed_seconds: float) -> None:
        payload = {
            "format": SCHEMA_VERSION,
            "shard_id": spec.shard_id,
            "spec": spec_to_data(spec),
            "elapsed_seconds": elapsed_seconds,
            "result": result_data,
        }
        handle, temp = tempfile.mkstemp(dir=self.root,
                                        prefix=spec.shard_id + ".",
                                        suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(temp, self.path_for(spec.shard_id))
        except BaseException:
            if os.path.exists(temp):
                os.unlink(temp)
            raise
        self._count_write()

    def _read(self, path: str) -> Optional[CheckpointEntry]:
        """Parse one file; None (counted) when present but unusable."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._count_corrupt()
            return None
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("result"), dict):
            self._count_corrupt()
            return None
        version = payload.get("format")
        return CheckpointEntry(
            shard_id=str(payload.get("shard_id",
                                     os.path.basename(path)[:-5])),
            spec_data=payload.get("spec") or {},
            result=payload["result"],
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            schema_version=version if isinstance(version, int) else -1,
        )

    def get(self, spec: "ShardSpec") -> Optional[CheckpointEntry]:
        entry = self._read(self.path_for(spec.shard_id))
        if entry is None or not self._validate(entry, spec):
            return None
        return entry

    def iter_completed(self) -> Iterator[CheckpointEntry]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            entry = self._read(os.path.join(self.root, name))
            if entry is not None and self._validate(entry, None):
                yield entry

    def compact(self,
                keep: Optional[Iterable[str]] = None) -> CompactionStats:
        stats = CompactionStats(bytes_before=self.bytes_on_disk())
        wanted = None if keep is None else set(keep)
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                # Leftover from a kill mid-write: superseded by the
                # atomic-replace protocol, never referenced again.
                os.unlink(path)
                stats.removed_superseded += 1
                continue
            if not name.endswith(".json"):
                continue
            entry = self._read(path)
            if entry is None or not self._validate(entry, None):
                os.unlink(path)
                stats.removed_corrupt += 1
            elif wanted is not None and entry.shard_id not in wanted:
                os.unlink(path)
                stats.removed_stale += 1
        stats.bytes_after = self.bytes_on_disk()
        self._count_compacted(stats.removed_total)
        return stats

    def bytes_on_disk(self) -> int:
        total = 0
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return 0
        for name in names:
            try:
                total += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                continue
        return total


# ----------------------------------------------------------------------
# sqlite backend (single file, WAL, batched transactions)
# ----------------------------------------------------------------------
class SqliteStore(StateStore):
    """All checkpoints in one ``checkpoints.sqlite`` file.

    * **WAL mode** -- readers never block the writer, and a kill mid
      transaction is rolled back by sqlite's recovery on the next
      open, so the database is never torn by a crash *it* caused.
    * **Batched transactional writes** -- ``put`` buffers entries and
      commits them ``batch_size`` at a time in one transaction (one
      fsync per batch, not per cell).  A crash loses at most the
      unflushed batch; those cells are simply recomputed on resume.
    * **Generational rows** -- a re-run cell inserts a new generation
      instead of updating in place; ``get`` reads the latest.
      :meth:`compact` deletes superseded generations, corrupt rows and
      stale shard ids, then truncates the WAL and VACUUMs.
    * **Torn-file recovery** -- a database file truncated or
      overwritten by outside forces (the torn-write fixture in
      ``tests/simulation/test_store_properties.py``) is quarantined as
      ``<name>.corrupt`` and a fresh store is created: the sweep
      recomputes instead of crashing.
    """

    backend = "sqlite"

    FILENAME = "checkpoints.sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS checkpoints (
            shard_id        TEXT    NOT NULL,
            generation      INTEGER NOT NULL,
            schema_version  INTEGER NOT NULL,
            fingerprint     TEXT    NOT NULL,
            spec            TEXT    NOT NULL,
            elapsed_seconds REAL    NOT NULL,
            result          TEXT    NOT NULL,
            PRIMARY KEY (shard_id, generation)
        )
    """

    #: Latest generation per shard id.
    _LATEST = ("SELECT shard_id, generation, schema_version, fingerprint,"
               " spec, elapsed_seconds, result FROM checkpoints"
               " WHERE (shard_id, generation) IN"
               " (SELECT shard_id, MAX(generation) FROM checkpoints"
               "  GROUP BY shard_id)")

    def __init__(self, root: str, metrics: Optional[Metrics] = None,
                 batch_size: int = 32) -> None:
        super().__init__(metrics)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.root = root
        self.path = os.path.join(root, self.FILENAME)
        self.batch_size = batch_size
        self._conn: Optional[sqlite3.Connection] = None
        self._pending: List[Tuple[str, str, str, float, str]] = []

    # -- lifecycle -----------------------------------------------------
    def open(self) -> "SqliteStore":
        os.makedirs(self.root, exist_ok=True)
        try:
            self._connect()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._connect()
        return self

    def _connect(self) -> None:
        conn = sqlite3.connect(self.path)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(self._SCHEMA)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        self._conn = conn

    def _quarantine(self) -> None:
        """Move a torn/overwritten database aside and count the loss.

        Every checkpoint it held is gone, but the sweep keeps running:
        resume finds an empty store and recomputes.  The damaged file
        is kept as ``.corrupt`` for post-mortem inspection.
        """
        self._conn = None
        if os.path.exists(self.path):
            os.replace(self.path, self.path + ".corrupt")
        for suffix in ("-wal", "-shm"):
            sidecar = self.path + suffix
            if os.path.exists(sidecar):
                os.unlink(sidecar)
        self._count_corrupt()

    def close(self) -> None:
        if self._conn is not None:
            self.flush()
            self._conn.close()
            self._conn = None

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError("SqliteStore is not open")
        return self._conn

    # -- writes --------------------------------------------------------
    def put(self, spec: "ShardSpec", result_data: Dict,
            elapsed_seconds: float) -> None:
        self._pending.append((
            spec.shard_id,
            payload_fingerprint(result_data),
            json.dumps(spec_to_data(spec), sort_keys=True),
            elapsed_seconds,
            json.dumps(result_data),
        ))
        self._count_write()
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        conn = self._connection()
        with conn:   # one transaction per batch
            for shard_id, fingerprint, spec_json, elapsed, result in \
                    self._pending:
                conn.execute(
                    "INSERT INTO checkpoints (shard_id, generation,"
                    " schema_version, fingerprint, spec, elapsed_seconds,"
                    " result) VALUES (?, COALESCE((SELECT MAX(generation)"
                    " FROM checkpoints WHERE shard_id = ?), 0) + 1,"
                    " ?, ?, ?, ?, ?)",
                    (shard_id, shard_id, SCHEMA_VERSION, fingerprint,
                     spec_json, elapsed, result))
        self._pending.clear()
        self._count_txn()

    # -- reads ---------------------------------------------------------
    def _entry_from_row(self, row: Tuple[str, int, int, str, str, float,
                                         str]) -> Optional[CheckpointEntry]:
        shard_id, _, version, fingerprint, spec_json, elapsed, result = row
        try:
            spec_data = json.loads(spec_json)
            result_data = json.loads(result)
        except ValueError:
            self._count_corrupt()
            return None
        return CheckpointEntry(
            shard_id=shard_id, spec_data=spec_data, result=result_data,
            elapsed_seconds=elapsed, schema_version=version,
            fingerprint=fingerprint)

    def get(self, spec: "ShardSpec") -> Optional[CheckpointEntry]:
        self.flush()
        try:
            row = self._connection().execute(
                self._LATEST + " AND shard_id = ?",
                (spec.shard_id,)).fetchone()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._connect()
            return None
        if row is None:
            return None
        entry = self._entry_from_row(row)
        if entry is None or not self._validate(entry, spec):
            return None
        return entry

    def iter_completed(self) -> Iterator[CheckpointEntry]:
        self.flush()
        try:
            rows = self._connection().execute(
                self._LATEST + " ORDER BY shard_id").fetchall()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._connect()
            return
        for row in rows:
            entry = self._entry_from_row(row)
            if entry is not None and self._validate(entry, None):
                yield entry

    # -- maintenance ---------------------------------------------------
    def compact(self,
                keep: Optional[Iterable[str]] = None) -> CompactionStats:
        self.flush()
        stats = CompactionStats(bytes_before=self.bytes_on_disk())
        conn = self._connection()
        with conn:
            stats.removed_superseded = conn.execute(
                "DELETE FROM checkpoints WHERE (shard_id, generation)"
                " NOT IN (SELECT shard_id, MAX(generation)"
                " FROM checkpoints GROUP BY shard_id)").rowcount
            # Rows the read path would refuse: wrong schema version or
            # a payload that no longer matches its fingerprint.
            bad: List[str] = []
            for row in conn.execute(self._LATEST).fetchall():
                entry = self._entry_from_row(row)
                if entry is None or entry.schema_version != SCHEMA_VERSION \
                        or not isinstance(entry.result, dict) \
                        or payload_fingerprint(entry.result) != \
                        entry.fingerprint:
                    bad.append(row[0])
            for shard_id in bad:
                conn.execute("DELETE FROM checkpoints WHERE shard_id = ?",
                             (shard_id,))
            stats.removed_corrupt = len(bad)
            if keep is not None:
                wanted = sorted(set(keep))
                before = conn.execute(
                    "SELECT COUNT(DISTINCT shard_id)"
                    " FROM checkpoints").fetchone()[0]
                placeholders = ",".join("?" for _ in wanted) or "''"
                conn.execute(
                    f"DELETE FROM checkpoints WHERE shard_id NOT IN"
                    f" ({placeholders})", wanted)
                after = conn.execute(
                    "SELECT COUNT(DISTINCT shard_id)"
                    " FROM checkpoints").fetchone()[0]
                stats.removed_stale = before - after
        conn.execute("VACUUM")
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        stats.bytes_after = self.bytes_on_disk()
        self._count_compacted(stats.removed_total)
        return stats

    def bytes_on_disk(self) -> int:
        total = 0
        for path in (self.path, self.path + "-wal", self.path + "-shm"):
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
def open_store(backend: str, root: str,
               metrics: Optional[Metrics] = None) -> StateStore:
    """Open (creating if needed) the *backend* store rooted at *root*."""
    if backend == "json":
        return JsonDirStore(root, metrics=metrics).open()
    if backend == "sqlite":
        return SqliteStore(root, metrics=metrics).open()
    raise ValueError(
        f"unknown checkpoint store backend {backend!r}; "
        f"expected one of {', '.join(BACKENDS)}")
