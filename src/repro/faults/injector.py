"""The deterministic fault injector.

One :class:`FaultInjector` carries a :class:`~repro.faults.profile.
FaultProfile`, a private ``random.Random`` stream, and (optionally) a
shared :class:`repro.observability.Metrics` registry.  Every decision
-- drop this reconciliation?  fail this read?  cut the fill after how
many files? -- is a pure function of ``(profile, seed, draw order)``,
so a fault run replays exactly under the same seed, which is what the
kill/resume checkpoint property tests and the CI fault matrix rely on.

Two invariants keep the golden outputs safe:

* an **inert** profile never draws a random number, so attaching a
  ``none`` injector is indistinguishable from attaching nothing;
* the injector only *decides*; the wrapped code performs (or skips)
  the work, so no fault can corrupt state the substrate didn't already
  model.

Injected faults are counted under the ``faults.`` metrics namespace
(``faults.injected_total`` plus one counter per class); durations are
accumulated in integer milliseconds so they render as plain counters.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.profile import NO_FAULTS, FaultProfile
from repro.observability import Metrics


class FaultInjector:
    """Seeded decision source for all four fault classes."""

    def __init__(self, profile: FaultProfile = NO_FAULTS, seed: int = 0,
                 metrics: Optional[Metrics] = None) -> None:
        import random
        self.profile = profile
        self.seed = seed
        # Seeding on (profile name, seed) keeps two profiles at the
        # same seed from sharing a decision stream.
        self._rng = random.Random(f"faults:{profile.name}:{seed}")
        self.metrics = metrics if metrics is not None else Metrics()

    # ------------------------------------------------------------------
    # decision plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.incr(name, amount)
        self.metrics.incr("faults.injected_total", amount)

    def _chance(self, probability: float, counter: str) -> bool:
        """One biased coin flip; draws nothing when impossible."""
        if probability <= 0.0:
            return False
        if self._rng.random() >= probability:
            return False
        self._count(counter)
        return True

    # ------------------------------------------------------------------
    # (a) surprise disconnection mid-hoard-fill
    # ------------------------------------------------------------------
    def fill_interruption(self, total_files: int) -> Optional[int]:
        """How many files of a *total_files*-file fill complete before
        the user walks away, or ``None`` for an uninterrupted fill."""
        if total_files <= 0:
            return None
        if not self._chance(self.profile.fill_interrupt_probability,
                            "faults.fill_interrupted"):
            return None
        return self._rng.randrange(total_files)

    def note_partial_fill(self, missing_bytes: int) -> None:
        """Record how many bytes the interrupted fill left behind."""
        self.metrics.incr("faults.partial_fill_bytes", missing_bytes)

    # ------------------------------------------------------------------
    # (b) failed synchronization attempts
    # ------------------------------------------------------------------
    def sync_attempt_fails(self) -> bool:
        return self._chance(self.profile.sync_failure_probability,
                            "faults.sync_failures")

    def note_retry(self, backoff_seconds: float) -> None:
        self.metrics.incr("faults.sync_retries")
        self.metrics.incr("faults.backoff_ms",
                          int(round(backoff_seconds * 1000)))

    def note_sync_gave_up(self) -> None:
        self.metrics.incr("faults.sync_gave_up")

    # ------------------------------------------------------------------
    # (c) gossip-plane faults
    # ------------------------------------------------------------------
    def gossip_dropped(self) -> bool:
        return self._chance(self.profile.gossip_drop_probability,
                            "faults.gossip_dropped")

    def gossip_duplicated(self) -> bool:
        return self._chance(self.profile.gossip_duplicate_probability,
                            "faults.gossip_duplicated")

    def gossip_delay_rounds(self) -> int:
        """0 for an on-time reconciliation, else rounds of delay."""
        if not self._chance(self.profile.gossip_delay_probability,
                            "faults.gossip_delayed"):
            return 0
        return self._rng.randint(1, self.profile.gossip_max_delay_rounds)

    # ------------------------------------------------------------------
    # (d) slow/flaky server reads during hoard fills
    # ------------------------------------------------------------------
    def read_fails(self) -> bool:
        failed = self._chance(self.profile.read_failure_probability,
                              "faults.reads_failed")
        if not failed and self.profile.read_latency_seconds > 0.0:
            # The read succeeded but stalled: simulated latency only,
            # accumulated rather than slept.
            self.metrics.incr(
                "faults.read_latency_ms",
                int(round(self.profile.read_latency_seconds * 1000)))
        return failed
