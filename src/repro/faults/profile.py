"""Fault profiles: named, serializable descriptions of adversity.

A :class:`FaultProfile` is a frozen bag of probabilities and policy
constants covering the four fault classes the harness injects
(docs/fault-injection.md):

(a) **surprise disconnection mid-hoard-fill** -- the user walks away
    before the fill completes (paper section 2's "disconnection
    imminent" notification never arrives in time);
(b) **interrupted synchronization** -- ``synchronize()`` attempts fail
    and are retried with exponential backoff under a bounded-attempts
    policy (:class:`repro.replication.base.RetryPolicy`);
(c) **lossy gossip** -- pairwise reconciliations dropped, duplicated
    or delayed on the :class:`~repro.replication.gossip.RumorNetwork`
    plane;
(d) **slow/flaky server reads** -- stats issued during
    ``set_hoard``/``hoard_walk`` fail or stall.

Profiles are identified by name so a CLI flag, a checkpoint and a CI
matrix can all refer to the same adversity level; ``profile_to_data``
and ``profile_from_data`` give the exact JSON round-trip the runner's
checkpoints require.  The ``none`` profile is *inert*: every
probability is zero, no random numbers are ever drawn, and every code
path behaves byte-identically to a build without fault injection.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FaultProfile:
    """Probabilities and policy constants for one adversity level."""

    name: str
    # (a) surprise disconnection during the hoard fill
    fill_interrupt_probability: float = 0.0
    # (b) failed synchronize() attempts + retry/backoff policy
    sync_failure_probability: float = 0.0
    max_sync_attempts: int = 3
    backoff_initial_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 60.0
    # (c) gossip-plane reconciliation faults
    gossip_drop_probability: float = 0.0
    gossip_duplicate_probability: float = 0.0
    gossip_delay_probability: float = 0.0
    gossip_max_delay_rounds: int = 2
    # (d) flaky/slow server reads during hoard fills
    read_failure_probability: float = 0.0
    read_latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fill_interrupt_probability", "sync_failure_probability",
                     "gossip_drop_probability",
                     "gossip_duplicate_probability",
                     "gossip_delay_probability", "read_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_sync_attempts < 1:
            raise ValueError("max_sync_attempts must be >= 1")
        if self.gossip_max_delay_rounds < 1:
            raise ValueError("gossip_max_delay_rounds must be >= 1")

    @property
    def inert(self) -> bool:
        """True when no fault can ever fire (the golden-path profile)."""
        return not any((
            self.fill_interrupt_probability,
            self.sync_failure_probability,
            self.gossip_drop_probability,
            self.gossip_duplicate_probability,
            self.gossip_delay_probability,
            self.read_failure_probability,
        ))


#: The inert profile: behaviour is byte-identical to no injection.
NO_FAULTS = FaultProfile(name="none")

#: A lossy, partition-prone network: gossip reconciliations are
#: dropped, duplicated and delayed, and synchronizations fail often
#: enough to exercise the retry/backoff path.
LOSSY = FaultProfile(
    name="lossy",
    sync_failure_probability=0.25,
    gossip_drop_probability=0.20,
    gossip_duplicate_probability=0.10,
    gossip_delay_probability=0.15,
    gossip_max_delay_rounds=3,
)

#: A flaky server and an impatient user: reads stall or fail during
#: the hoard fill, and the laptop sometimes leaves mid-fill.
FLAKY = FaultProfile(
    name="flaky",
    fill_interrupt_probability=0.30,
    sync_failure_probability=0.10,
    read_failure_probability=0.10,
    read_latency_seconds=0.5,
)

#: Both at once, turned up: the stress profile.
HOSTILE = FaultProfile(
    name="hostile",
    fill_interrupt_probability=0.50,
    sync_failure_probability=0.40,
    max_sync_attempts=4,
    gossip_drop_probability=0.35,
    gossip_duplicate_probability=0.20,
    gossip_delay_probability=0.25,
    gossip_max_delay_rounds=4,
    read_failure_probability=0.25,
    read_latency_seconds=1.5,
)

PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (NO_FAULTS, LOSSY, FLAKY, HOSTILE)
}


def profile_from_name(name: str) -> FaultProfile:
    """Look up a named profile (CLI ``--fault-profile`` values)."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fault profile {name!r} (known: {known})") \
            from None


def profile_to_data(profile: FaultProfile) -> Dict:
    """JSON-safe dictionary form (runner checkpoints)."""
    return dataclasses.asdict(profile)


def profile_from_data(data: Dict) -> FaultProfile:
    """Exact inverse of :func:`profile_to_data`."""
    return FaultProfile(**data)
