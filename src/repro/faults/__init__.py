"""Deterministic fault injection for the replication substrates.

SEER exists to survive *unplanned* disconnection, so the harness must
be able to express more than the happy path: surprise disconnections
mid-hoard-fill, synchronizations that fail and back off, gossip that
drops or delays reconciliations, servers that stall during a fill.
This package provides the seedable :class:`FaultInjector` that every
:class:`~repro.replication.base.ReplicationSystem` and the
:class:`~repro.replication.gossip.RumorNetwork` accept, the named
:class:`FaultProfile` levels the CLI exposes as ``--fault-profile``,
and their exact JSON round-trip for runner checkpoints.

See docs/fault-injection.md for the profile catalogue, the
retry/backoff policy and the no-fault golden-equivalence guarantee.
"""

from repro.faults.injector import FaultInjector
from repro.faults.profile import (
    FLAKY,
    HOSTILE,
    LOSSY,
    NO_FAULTS,
    PROFILES,
    FaultProfile,
    profile_from_data,
    profile_from_name,
    profile_to_data,
)

__all__ = [
    "FLAKY",
    "HOSTILE",
    "LOSSY",
    "NO_FAULTS",
    "PROFILES",
    "FaultInjector",
    "FaultProfile",
    "profile_from_data",
    "profile_from_name",
    "profile_to_data",
]
