"""The asyncio client for the hoard daemon, with at-least-once resend.

:class:`ServiceClient` speaks the protocol of
:mod:`repro.service.protocol` over TCP or a unix socket.  Its job
beyond plain request/response is the delivery contract the
differential and fault tests rely on:

* **sequence numbering** -- the client stamps every outgoing event with
  a tenant-monotonic ``seq`` (clients own their own event streams, so
  the counter lives here);
* **reconnect with resend** -- when the connection dies before a
  batch's ack arrives, the client reconnects under the PR 4
  :class:`~repro.replication.base.RetryPolicy` backoff schedule and
  resends the unacknowledged batch.  The daemon's seq dedupe turns
  this at-least-once delivery into exactly-once application, so a
  flaky network changes nothing about tenant state.

One client instance serves one tenant and must be used from a single
asyncio task (requests are strictly serial over one connection).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.core.correlator import ObservedReference
from repro.observability import Metrics
from repro.replication.base import RetryPolicy
from repro.service import protocol


class ServiceUnavailableError(ConnectionError):
    """The daemon stayed unreachable through every retry attempt."""


class ServiceClient:
    """One tenant's connection to the hoard daemon.

    Parameters name either a TCP endpoint (*host*/*port*) or a unix
    socket (*unix_path*).  *retry_policy* bounds reconnect attempts;
    backoffs are really slept (scaled by *backoff_scale*, which tests
    set near zero to keep retries fast).
    """

    def __init__(self, tenant: str, host: str = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None,
                 retry_policy: RetryPolicy = RetryPolicy(),
                 backoff_scale: float = 1.0,
                 metrics: Optional[Metrics] = None) -> None:
        self.tenant = protocol.validate_tenant(tenant)
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.retry_policy = retry_policy
        self.backoff_scale = backoff_scale
        self.metrics = metrics if metrics is not None else Metrics()
        self.next_seq = 1
        self.reconnects = 0
        self.resends = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_id = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    async def connect(self) -> Dict[str, Any]:
        """Open the connection and perform the hello/welcome handshake.

        A failure *after* the TCP/unix connect succeeds (handshake
        frame refused, welcome malformed, write raising) closes the
        just-opened writer before re-raising -- otherwise every retry
        attempt would leak one live socket (lint rule RL012).
        """
        if self.unix_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.unix_path, limit=protocol.MAX_LINE_BYTES)
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_LINE_BYTES)
        try:
            welcome = await self._roundtrip({"type": "hello",
                                             "tenant": self.tenant})
            if welcome.get("type") != "welcome":
                raise ConnectionError(f"handshake failed: {welcome!r}")
        except BaseException:
            await self.close()
            raise
        return welcome

    async def close(self) -> None:
        """Drop the connection; always forgets the reader/writer pair.

        The refs are cleared *before* ``wait_closed`` so that an
        unexpected exception from the drain (anything beyond the
        routine ConnectionError/OSError of an already-dead peer)
        cannot strand the client holding a half-closed writer it
        believes is live.
        """
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "ServiceClient":
        # Deliberately lazy: the first request connects inside the
        # retried path, so a connection refused or cut during the
        # handshake is covered by the same policy as any later failure.
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def _reconnect(self, attempt: int) -> None:
        """Sleep the policy's backoff for failed *attempt*, reconnect."""
        await self.close()
        pause = self.retry_policy.backoff_for(attempt) * self.backoff_scale
        if pause > 0:
            await asyncio.sleep(pause)
        await self.connect()
        self.reconnects += 1
        self.metrics.incr("service.client_reconnects")

    # ------------------------------------------------------------------
    # the request loop
    # ------------------------------------------------------------------
    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, read one frame (no retries at this layer)."""
        if self._reader is None or self._writer is None:
            raise ConnectionError("client is not connected")
        self._request_id += 1
        message = dict(message)
        message.setdefault("v", protocol.PROTOCOL_VERSION)
        message.setdefault("id", self._request_id)
        self._writer.write(protocol.encode(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("connection closed before the response")
        return protocol.decode_line(line)

    async def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Round-trip with reconnect-and-resend under the retry policy.

        Safe for every message type: ``events`` batches are idempotent
        at the daemon thanks to seq dedupe, and the other requests are
        read-only or idempotent by construction.
        """
        attempts = self.retry_policy.max_attempts
        resent = False
        for attempt in range(1, attempts + 1):
            try:
                if not self.connected:
                    await self.connect()
                if resent:
                    self.resends += 1
                    self.metrics.incr("service.client_resends")
                reply = await self._roundtrip(message)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                if attempt >= attempts:
                    raise ServiceUnavailableError(
                        f"daemon unreachable after {attempts} attempts") \
                        from None
                resent = True
                try:
                    await self._reconnect(attempt)
                except (ConnectionError, OSError):
                    continue   # next loop iteration backs off again
                continue
            if reply.get("type") == "error":
                raise protocol.ProtocolError(str(reply.get("code")),
                                             str(reply.get("error")))
            return reply
        raise ServiceUnavailableError(
            f"daemon unreachable after {attempts} attempts")

    # ------------------------------------------------------------------
    # the public request surface
    # ------------------------------------------------------------------
    def stamp(self, references: Sequence[ObservedReference]
              ) -> List[ObservedReference]:
        """Assign this client's next wire sequence numbers to a batch."""
        stamped: List[ObservedReference] = []
        for reference in references:
            stamped.append(ObservedReference(
                seq=self.next_seq, time=reference.time, pid=reference.pid,
                action=reference.action, path=reference.path,
                path2=reference.path2, ppid=reference.ppid))
            self.next_seq += 1
        return stamped

    async def send_events(self, references: Sequence[ObservedReference],
                          stamp: bool = True) -> Dict[str, Any]:
        """Deliver a batch of classified references (at-least-once).

        With ``stamp=True`` (the default) the batch is renumbered with
        this client's monotonic sequence; pass ``stamp=False`` when the
        caller manages sequence numbers itself.
        """
        batch = self.stamp(references) if stamp else list(references)
        self.metrics.incr("service.client_batches")
        return await self._request({
            "type": "events", "tenant": self.tenant,
            "records": protocol.references_to_wire(batch)})

    async def hoard_fill(self, budget: int,
                         sizes: Optional[Dict[str, int]] = None,
                         default_size: int = 0) -> Dict[str, Any]:
        """Ask for a hoard selection; returns the canonical payload."""
        message: Dict[str, Any] = {"type": "hoard_fill",
                                   "tenant": self.tenant, "budget": budget,
                                   "default_size": default_size}
        if sizes is not None:
            message["sizes"] = sizes
        reply = await self._request(message)
        hoard = reply.get("hoard")
        assert isinstance(hoard, dict)
        return hoard

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"type": "stats", "tenant": self.tenant})

    async def checkpoint(self) -> Dict[str, Any]:
        """Ask the daemon to persist this tenant's state now."""
        return await self._request({"type": "checkpoint",
                                    "tenant": self.tenant})

    async def ping(self) -> bool:
        reply = await self._request({"type": "ping"})
        return reply.get("type") == "pong"
