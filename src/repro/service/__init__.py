"""SEER as a service: the long-lived multi-tenant hoard daemon.

Everything before this package replayed traces in batch.  Here the
same pipeline runs *online*: a :class:`~repro.service.daemon.HoardDaemon`
accepts classified trace references from many concurrent clients over
a newline-delimited-JSON protocol (``docs/service.md``), maintains one
correlator + clustering state per tenant behind an actor-per-tenant
model sharded across a bounded worker pool, and answers ``hoard_fill``
and ``stats`` requests against the live state.

The split follows the paper's own architecture: SEER's observer is the
kernel-resident component on each client machine, while the correlator
runs as a user-level daemon (section 2).  This package moves that
daemon off-machine: clients classify their own references (an
:class:`~repro.observer.observer.Observer` fed by the local kernel)
and stream them to a shared correlator service.

The correctness anchor is differential: an online session replaying a
trace must produce cluster ids and hoard selections *byte-identical*
to a batch replay of the same reference stream through the PR 7
:class:`~repro.core.arena.ColumnarEngine`
(``tests/service/test_differential.py``).
"""

from repro.service.client import ServiceClient
from repro.service.daemon import HoardDaemon, run_service
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    reference_from_wire,
    reference_to_wire,
)
from repro.service.tenant import (
    TenantActor,
    hoard_fill_payload,
    replay_references,
)

__all__ = [
    "PROTOCOL_VERSION",
    "HoardDaemon",
    "ProtocolError",
    "ServiceClient",
    "TenantActor",
    "hoard_fill_payload",
    "reference_from_wire",
    "reference_to_wire",
    "replay_references",
    "run_service",
]
