"""The long-lived multi-tenant hoard daemon (``python -m repro service``).

An asyncio server speaking the NDJSON protocol of
:mod:`repro.service.protocol` over TCP or a unix socket.  Concurrency
model (docs/service.md):

* **actor per tenant** -- every tenant owns a :class:`
  ~repro.service.tenant.TenantActor` with a bounded inbox queue; all
  of a tenant's work (event batches, ``hoard_fill``, ``stats``,
  ``checkpoint``) flows through that one queue in arrival order, so
  per-tenant processing is strictly serial and needs no locks;
* **bounded worker pool** -- tenants are sharded by ``crc32(tenant)``
  onto a fixed set of shard workers.  A tenant is scheduled on its
  shard's run queue only while its inbox is non-empty and is never on
  the run queue twice, so exactly one worker ever touches an actor;
* **backpressure** -- when a tenant's inbox is at its bound the
  connection handler blocks in ``put()``, which stops reading that
  client's socket; TCP flow control pushes the stall back to the
  producer.  Stalls are counted (``service.queue_full_waits``).

Durability: with a checkpoint directory the daemon persists each
tenant's correlator state through the PR 6
:class:`~repro.simulation.store.StateStore` (json or sqlite backend)
-- explicitly on a ``checkpoint`` request and for every tenant during
the graceful drain that ``stop()`` performs.  A restarted daemon
restores tenants lazily on first contact.

Fault injection: a non-inert :class:`~repro.faults.FaultProfile`
drives server-side adversity -- connections dropped mid-stream (after
an event batch is applied but before its ack, so clients exercise the
at-least-once redelivery path) and slow reads
(``read_latency_seconds`` of real stall per frame).  With no profile
(or ``none``) no random number is ever drawn and behaviour is
identical to a build without injection.
"""

from __future__ import annotations

import asyncio
import sys
import time
import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.faults import FaultInjector, FaultProfile, profile_from_name
from repro.observability import Metrics
from repro.service import protocol
from repro.service.tenant import (
    CheckpointRequest,
    DrainBarrier,
    EventBatch,
    FillRequest,
    InboxItem,
    StatsRequest,
    TenantActor,
)
from repro.simulation.store import StateStore, open_store

#: Items one worker visit drains from an actor's inbox before yielding
#: the shard to its next ready tenant.
MAX_BATCH_PER_VISIT = 256

#: Request latency samples retained for the percentile report.
LATENCY_SAMPLES = 4096

#: Snapshot suffixes that are not plain counters (runner convention).
_NON_COUNTER_SUFFIXES = (".count", ".seconds", ".per_second", ".calls",
                         ".total_seconds", ".mean_seconds")

_T = TypeVar("_T")


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 for an empty set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), round(fraction * len(ordered))))
    return ordered[rank - 1]


class HoardDaemon:
    """The serving layer over per-tenant correlator + clustering state."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 shards: int = 4, queue_bound: int = 1024,
                 checkpoint_dir: Optional[str] = None,
                 store_backend: str = "json", resume: bool = True,
                 fault_profile: Union[FaultProfile, str, None] = None,
                 fault_seed: int = 0,
                 metrics: Optional[Metrics] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        self.parameters = parameters
        self.shards = shards
        self.queue_bound = queue_bound
        self.checkpoint_dir = checkpoint_dir
        self.store_backend = store_backend
        self.resume = resume
        self.metrics = metrics if metrics is not None else Metrics()
        if isinstance(fault_profile, str):
            fault_profile = profile_from_name(fault_profile)
        self._injector: Optional[FaultInjector] = None
        # A latency-only profile is "inert" for probability draws but
        # still stalls reads, so it gets an injector too.
        if fault_profile is not None and (
                not fault_profile.inert
                or fault_profile.read_latency_seconds > 0):
            self._injector = FaultInjector(fault_profile, seed=fault_seed,
                                           metrics=self.metrics)
        self._fault_profile = fault_profile
        self._actors: Dict[str, TenantActor] = {}
        self._run_queues: List["asyncio.Queue[TenantActor]"] = []
        self._workers: List["asyncio.Task[None]"] = []
        self._connections: Set["asyncio.Task[None]"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._unix_path: Optional[str] = None
        self._store: Optional[StateStore] = None
        # Single-thread executor for every blocking store touch: the
        # sqlite backend's connection has thread affinity
        # (check_same_thread) and both backends do real disk IO, so one
        # dedicated thread keeps the event loop responsive while still
        # serializing store access.  Lint rule RL008 enforces the
        # routing.
        self._io: Optional[ThreadPoolExecutor] = None
        self._latencies: Deque[float] = deque(maxlen=LATENCY_SAMPLES)
        self._queue_high_water = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    unix_path: Optional[str] = None) -> None:
        """Open the checkpoint store, spawn workers, begin listening.

        A failure partway through (store directory unusable, socket
        already bound) unwinds everything acquired so far -- workers,
        store, IO thread -- so a caller that catches the error holds a
        daemon with no live resources and may retry ``start``.
        """
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._io = ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="hoard-io")
        try:
            if self.checkpoint_dir is not None:
                self._store = await self._store_call(self._open_store)
            self._run_queues = [asyncio.Queue()
                                for _ in range(self.shards)]
            self._workers = [
                asyncio.get_running_loop().create_task(
                    self._worker(run_queue), name=f"hoard-shard-{index}")
                for index, run_queue in enumerate(self._run_queues)]
            if unix_path is not None:
                self._unix_path = unix_path
                self._server = await asyncio.start_unix_server(
                    self._on_connection, path=unix_path,
                    limit=protocol.MAX_LINE_BYTES)
            else:
                self._server = await asyncio.start_server(
                    self._on_connection, host=host, port=port,
                    limit=protocol.MAX_LINE_BYTES)
        except BaseException:
            for worker in self._workers:
                worker.cancel()
            if self._workers:
                await asyncio.gather(*self._workers,
                                     return_exceptions=True)
            self._workers = []
            self._run_queues = []
            await self._store_call(self._close_store)
            if self._io is not None:
                self._io.shutdown(wait=True)
                self._io = None
            self._unix_path = None
            raise

    @property
    def address(self) -> Union[Tuple[str, int], str, None]:
        """Where the daemon listens: ``(host, port)`` or a socket path."""
        if self._unix_path is not None:
            return self._unix_path
        if self._server is None or not self._server.sockets:
            return None
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain inboxes, checkpoint.

        With ``drain=False`` queued-but-unapplied events are abandoned
        (clients that never saw an ack will redeliver them to the next
        incarnation, where the seq dedupe applies them once).
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        if drain:
            with self.metrics.timed("service.drain"):
                for tenant in sorted(self._actors):
                    await self._actors[tenant].inbox.join()
                if self._io is not None:
                    await self._store_call(self.checkpoint_all)
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._io is not None:
            await self._store_call(self._close_store)
            self._io.shutdown(wait=True)
            self._io = None
        self._server = None

    # ------------------------------------------------------------------
    # the store IO thread
    # ------------------------------------------------------------------
    async def _store_call(self, fn: Callable[..., _T],
                          *args: Any) -> _T:
        """Run one blocking store operation on the daemon's IO thread.

        All store access from coroutine context funnels through here
        (lint rule RL008 flags any direct call): the handoff keeps the
        event loop free during disk IO, and the one-thread executor
        gives the sqlite connection a stable home thread.
        """
        assert self._io is not None, "daemon is not started"
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._io, partial(fn, *args))

    def _open_store(self) -> StateStore:
        """Blocking open of the checkpoint store (IO thread only)."""
        assert self.checkpoint_dir is not None
        return open_store(self.store_backend, self.checkpoint_dir,
                          metrics=self.metrics)

    def _close_store(self) -> None:
        """Blocking flush+close of the store (IO thread only)."""
        store: Optional[StateStore] = self._store
        if store is None:
            return
        self._store = None
        store.flush()
        store.close()

    # ------------------------------------------------------------------
    # actors and sharding
    # ------------------------------------------------------------------
    def _shard_of(self, tenant: str) -> int:
        return zlib.crc32(tenant.encode("utf-8")) % self.shards

    def _spec_for(self, tenant: str) -> Any:
        """Checkpoint-store key: a service-kind shard spec carrying the
        daemon's complete parameter set, so a restart under different
        parameters rejects (and recomputes past) the stale state."""
        from repro.simulation.runner import ShardSpec, spec_for_parameters
        spec = ShardSpec(kind="service", machine=tenant, trace_seed=0,
                         days=0.0)
        return spec_for_parameters(spec, self.parameters)

    def _store_entry(self, tenant: str) -> Optional[Any]:
        """Blocking restore-read of a tenant's checkpoint (IO thread).

        Returns the store entry (or None) without touching actor
        state; registration happens back on the event loop.
        """
        if self._store is None or not self.resume:
            return None
        return self._store.get(self._spec_for(tenant))

    def _register_actor(self, tenant: str,
                        entry: Optional[Any]) -> TenantActor:
        """Create a tenant's actor, restoring from *entry* if given."""
        actor = TenantActor(tenant, parameters=self.parameters,
                            queue_bound=self.queue_bound)
        if entry is not None:
            actor.load_state(entry.result)
            self.metrics.incr("service.tenants_restored")
        self._actors[tenant] = actor
        self.metrics.incr("service.tenants")
        return actor

    def actor_for(self, tenant: str) -> TenantActor:
        """Get or lazily create (and maybe restore) a tenant's actor.

        Synchronous variant for embedders and tests driving the daemon
        without a running server; request dispatch uses
        :meth:`_actor_for`, which reads the checkpoint store on the IO
        thread instead of blocking the event loop.
        """
        actor = self._actors.get(tenant)
        if actor is not None:
            return actor
        return self._register_actor(tenant, self._store_entry(tenant))

    async def _actor_for(self, tenant: str) -> TenantActor:
        """Async ``actor_for``: the restore read runs on the IO thread.

        The registry is re-checked after the await -- two connections
        racing to create the same tenant must converge on one actor
        (the loser's restore read is discarded).
        """
        actor = self._actors.get(tenant)
        if actor is not None:
            return actor
        if self._store is None or not self.resume:
            return self._register_actor(tenant, None)
        entry = await self._store_call(self._store_entry, tenant)
        actor = self._actors.get(tenant)
        if actor is not None:
            return actor
        return self._register_actor(tenant, entry)

    def tenants(self) -> List[str]:
        return sorted(self._actors)

    async def submit(self, actor: TenantActor, item: InboxItem) -> None:
        """Enqueue one inbox item, blocking at the queue bound."""
        if actor.inbox.full():
            self.metrics.incr("service.queue_full_waits")
        await actor.inbox.put(item)
        depth = actor.inbox.qsize()
        if depth > self._queue_high_water:
            self.metrics.incr("service.queue_high_water",
                              depth - self._queue_high_water)
            self._queue_high_water = depth
        if not actor.scheduled:
            actor.scheduled = True
            self._run_queues[self._shard_of(actor.tenant)].put_nowait(actor)

    async def _worker(self, run_queue: "asyncio.Queue[TenantActor]") -> None:
        """One shard worker: serve ready tenants, one at a time."""
        while True:
            actor = await run_queue.get()
            started = time.perf_counter()
            for _ in range(MAX_BATCH_PER_VISIT):
                try:
                    item = actor.inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                try:
                    if isinstance(item, CheckpointRequest):
                        # The only inbox item that touches the store;
                        # it awaits the IO thread, so it is handled
                        # here rather than in the sync _process.  The
                        # actor stays owned by this worker across the
                        # await (scheduled=True prevents requeueing).
                        await self._handle_checkpoint(actor, item)
                    else:
                        self._process(actor, item)
                finally:
                    actor.inbox.task_done()
            actor.busy_seconds += time.perf_counter() - started
            # No await separates the emptiness check from the flag
            # update, so a producer cannot observe a half-descheduled
            # actor: it either sees scheduled=True (we requeued) or a
            # consistent idle actor it may schedule itself.
            if not actor.inbox.empty():
                run_queue.put_nowait(actor)
            else:
                actor.scheduled = False
            await asyncio.sleep(0)

    def _process(self, actor: TenantActor, item: InboxItem) -> None:
        if isinstance(item, EventBatch):
            before = actor.duplicates_dropped
            applied = actor.apply(item)
            self.metrics.incr("service.events_ingested", applied)
            redelivered = actor.duplicates_dropped - before
            if redelivered:
                self.metrics.incr("service.duplicates_dropped", redelivered)
            return
        future = item.future
        if future.done():
            return   # requester went away (cancelled connection)
        try:
            if isinstance(item, FillRequest):
                self.metrics.incr("service.fill_requests")
                future.set_result(actor.hoard_fill(item))
            elif isinstance(item, StatsRequest):
                future.set_result(actor.stats())
            elif isinstance(item, DrainBarrier):
                future.set_result({})
        except Exception as error:   # surfaced to the requester
            if not future.done():
                future.set_exception(error)

    async def _handle_checkpoint(self, actor: TenantActor,
                                 item: CheckpointRequest) -> None:
        """Serve one CheckpointRequest via the IO thread."""
        future = item.future
        if future.done():
            return   # requester went away (cancelled connection)
        try:
            result = await self._store_call(self._checkpoint, actor)
        except Exception as error:   # surfaced to the requester
            if not future.done():
                future.set_exception(error)
            return
        if not future.done():
            future.set_result(result)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _checkpoint(self, actor: TenantActor) -> Dict[str, Any]:
        """Blocking persist of one actor (IO thread when serving)."""
        if self._store is None:
            raise protocol.ProtocolError(
                "no-store", "daemon runs without a checkpoint store "
                "(start it with --checkpoint-dir)")
        self._store.put(self._spec_for(actor.tenant), actor.dump_state(),
                        actor.busy_seconds)
        self.metrics.incr("service.checkpoints")
        return {"checkpointed": actor.tenant, "last_seq": actor.last_seq}

    def checkpoint_all(self) -> int:
        """Persist every live tenant (the drain path); returns a count.

        Blocking; ``stop`` runs it through :meth:`_store_call`.  Safe
        to call directly on a never-started daemon (no store: no-op).
        """
        if self._store is None:
            return 0
        for tenant in sorted(self._actors):
            self._checkpoint(self._actors[tenant])
        self._store.flush()
        return len(self._actors)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.metrics.incr("service.connections")
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    error = protocol.ProtocolError(
                        "oversized", "frame exceeds the line limit")
                    self.metrics.incr("service.errors")
                    writer.write(protocol.encode(
                        protocol.error_response({}, error)))
                    await writer.drain()
                    break
                if not line:
                    break
                drop = False
                if self._injector is not None:
                    # One decision per frame: cut this connection?  The
                    # cut lands *after* an event batch is applied but
                    # before its ack, so redelivery-after-retry is the
                    # path clients actually exercise.
                    drop = self._injector.read_fails()
                    if not drop and self._fault_profile is not None and \
                            self._fault_profile.read_latency_seconds > 0:
                        await asyncio.sleep(
                            self._fault_profile.read_latency_seconds)
                try:
                    message = protocol.decode_line(line)
                    kind = protocol.validate_request(message)
                except protocol.ProtocolError as error:
                    self.metrics.incr("service.errors")
                    writer.write(protocol.encode(
                        protocol.error_response({}, error)))
                    await writer.drain()
                    continue
                if drop and kind != "events":
                    self.metrics.incr("service.connections_dropped")
                    break
                started = time.perf_counter()
                try:
                    reply = await self._dispatch(kind, message)
                except protocol.ProtocolError as error:
                    self.metrics.incr("service.errors")
                    reply = protocol.error_response(message, error)
                elapsed = time.perf_counter() - started
                self.metrics.mark("service.requests")
                self.metrics.observe("service.request_latency", elapsed)
                self._latencies.append(elapsed)
                if drop:
                    self.metrics.incr("service.connections_dropped")
                    break
                writer.write(protocol.encode(reply))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, kind: str,
                        message: Dict[str, Any]) -> Dict[str, Any]:
        if kind == "ping":
            return protocol.response("pong", message)
        if kind == "hello":
            return protocol.response("welcome", message,
                                     server="repro-hoard-daemon",
                                     shards=self.shards)
        tenant = protocol.validate_tenant(message.get("tenant"))
        actor = await self._actor_for(tenant)
        if kind == "events":
            references = protocol.references_from_wire(
                message.get("records"))
            fresh = actor.dedupe(references)
            redelivered = len(references) - len(fresh)
            if redelivered:
                self.metrics.incr("service.duplicates_dropped", redelivered)
            if fresh:
                await self.submit(actor, EventBatch(fresh))
            self.metrics.incr("service.batches")
            return protocol.response("ok", message, accepted=len(fresh),
                                     duplicates=redelivered)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        if kind == "hoard_fill":
            await self.submit(actor, FillRequest(
                budget=_require_int(message, "budget"),
                sizes=_optional_sizes(message),
                default_size=_optional_int(message, "default_size", 0),
                future=future))
            return protocol.response("hoard", message, hoard=await future)
        if kind == "stats":
            await self.submit(actor, StatsRequest(future=future))
            return protocol.response("stats_result", message,
                                     tenant_stats=await future,
                                     service=self.service_stats())
        if kind == "checkpoint":
            await self.submit(actor, CheckpointRequest(future=future))
            return protocol.response("ok", message, **await future)
        raise protocol.ProtocolError("unknown-type",
                                     f"unhandled request type {kind!r}")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def service_stats(self) -> Dict[str, Any]:
        samples = list(self._latencies)
        return {
            "tenants": len(self._actors),
            "events_ingested": self.metrics.counter(
                "service.events_ingested"),
            "queue_depth_total": sum(
                actor.inbox.qsize() for actor in self._actors.values()),
            "request_p50_ms": round(_percentile(samples, 0.50) * 1000, 3),
            "request_p99_ms": round(_percentile(samples, 0.99) * 1000, 3),
        }

    def combined_counters(self) -> Dict[str, float]:
        """Service-wide counters plus every tenant pipeline's, summed.

        This is the concurrent-absorb path the thread/task-safe
        ``Metrics`` rework exists for: tenant registries are absorbed
        while their actors may still be recording.
        """
        merged = Metrics(strict=False)
        merged.absorb_counters(self.metrics.snapshot(),
                               skip_suffixes=_NON_COUNTER_SUFFIXES)
        for tenant in sorted(self._actors):
            merged.absorb_counters(
                self._actors[tenant].pipeline_metrics.snapshot(),
                skip_suffixes=_NON_COUNTER_SUFFIXES)
        return dict(merged.counters)


# ----------------------------------------------------------------------
# request field validation
# ----------------------------------------------------------------------
def _require_int(message: Dict[str, Any], key: str) -> int:
    value = message.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise protocol.ProtocolError(
            "bad-request", f"{key!r} must be a non-negative integer, "
            f"got {value!r}")
    return value


def _optional_int(message: Dict[str, Any], key: str, default: int) -> int:
    if key not in message:
        return default
    return _require_int(message, key)


def _optional_sizes(message: Dict[str, Any]) -> Optional[Dict[str, int]]:
    sizes = message.get("sizes")
    if sizes is None:
        return None
    if not isinstance(sizes, dict) or not all(
            isinstance(path, str) and isinstance(size, int)
            and not isinstance(size, bool) and size >= 0
            for path, size in sizes.items()):
        raise protocol.ProtocolError(
            "bad-request", "'sizes' must map paths to non-negative "
            "integer byte counts")
    return sizes


# ----------------------------------------------------------------------
# the CLI entry point's long-running body
# ----------------------------------------------------------------------
async def run_service(host: str = "127.0.0.1", port: int = 0,
                      unix_path: Optional[str] = None,
                      shards: int = 4, queue_bound: int = 1024,
                      checkpoint_dir: Optional[str] = None,
                      store_backend: str = "json", resume: bool = True,
                      fault_profile: Optional[str] = None,
                      fault_seed: int = 0,
                      parameters: SeerParameters = DEFAULT_PARAMETERS,
                      max_runtime_seconds: Optional[float] = None
                      ) -> Dict[str, float]:
    """Serve until SIGINT/SIGTERM (or a runtime bound), then drain.

    Returns the final combined counter snapshot so the CLI can honour
    ``--metrics`` after the daemon has already shut down.
    """
    daemon = HoardDaemon(parameters=parameters, shards=shards,
                         queue_bound=queue_bound,
                         checkpoint_dir=checkpoint_dir,
                         store_backend=store_backend, resume=resume,
                         fault_profile=fault_profile,
                         fault_seed=fault_seed)
    await daemon.start(host=host, port=port, unix_path=unix_path)
    print(f"hoard daemon listening on {daemon.address} "
          f"({shards} shard workers, queue bound {queue_bound})",
          file=sys.stderr)
    loop = asyncio.get_running_loop()
    done = asyncio.Event()
    try:
        import signal
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, done.set)
    except (ImportError, NotImplementedError):   # non-unix event loops
        pass
    if max_runtime_seconds is not None:
        loop.call_later(max_runtime_seconds, done.set)
    await done.wait()
    print("hoard daemon draining...", file=sys.stderr)
    await daemon.stop(drain=True)
    return daemon.combined_counters()
