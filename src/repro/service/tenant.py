"""Per-tenant actor state and the shared online==batch replay core.

One :class:`TenantActor` owns one tenant's entire pipeline: a
:class:`~repro.core.correlator.Correlator` (the PR 7 columnar engine
under default parameters), a :class:`~repro.core.hoard.HoardManager`,
the at-least-once dedupe cursor, and the inbox queue the daemon's
worker pool drains.  Actors never share mutable state -- tenant
isolation is structural, which is what
``tests/service/test_concurrency.py`` pins.

The functions :func:`replay_references` and :func:`hoard_fill_payload`
are the *entire* decision core, used verbatim by both the live daemon
and the batch replay.  The differential gate (online session ==
batch replay, byte-identical cluster ids and hoard selections) is
therefore a statement about the daemon's plumbing -- framing, batching,
queueing, dedupe, checkpoint/restart -- not about two parallel
implementations of hoarding that could drift apart.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.correlator import Correlator, ObservedReference
from repro.core.hoard import HoardManager
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.core.persistence import dump_correlator, load_correlator
from repro.observability import Metrics
from repro.service import protocol

#: Serialization format of one tenant checkpoint payload.
TENANT_STATE_VERSION = 1


# ----------------------------------------------------------------------
# the shared decision core (used online and in batch)
# ----------------------------------------------------------------------
def replay_references(references: Sequence[ObservedReference],
                      parameters: SeerParameters = DEFAULT_PARAMETERS,
                      correlator: Optional[Correlator] = None) -> Correlator:
    """Feed *references* through a correlator (creating one if needed).

    This is the batch half of the differential gate: the daemon applies
    events through exactly this loop, so an online session and a batch
    replay of the same stream land on identical state.
    """
    if correlator is None:
        correlator = Correlator(parameters)
    for reference in references:
        correlator.handle(reference)
    return correlator


def size_function_from(sizes: Optional[Mapping[str, int]],
                       default_size: int) -> Callable[[str], int]:
    """The size lookup a ``hoard_fill`` request describes.

    The daemon has no filesystem to stat (the client machine does), so
    the request carries an optional ``sizes`` mapping plus a default
    for paths it omits.
    """
    table: Dict[str, int] = dict(sizes) if sizes else {}

    def lookup(path: str) -> int:
        return table.get(path, default_size)

    return lookup


def hoard_fill_payload(correlator: Correlator, hoard: HoardManager,
                       budget: int,
                       sizes: Optional[Mapping[str, int]] = None,
                       default_size: int = 0) -> Dict[str, Any]:
    """Cluster, rank and fill; returns the canonical response payload.

    Both the tenant actor (online) and :func:`batch_hoard_fill` (batch)
    answer through this one function, so the two sides cannot diverge
    except through the state their correlators hold.
    """
    clusters = correlator.build_clusters()
    selection = hoard.build(clusters, size_function_from(sizes, default_size),
                            correlator.recency(), budget)
    return protocol.selection_to_data(selection, clusters)


def batch_hoard_fill(references: Sequence[ObservedReference],
                     budget: int,
                     parameters: SeerParameters = DEFAULT_PARAMETERS,
                     sizes: Optional[Mapping[str, int]] = None,
                     default_size: int = 0) -> Dict[str, Any]:
    """The batch replay a single-tenant online session must match."""
    correlator = replay_references(references, parameters)
    return hoard_fill_payload(correlator, HoardManager(parameters),
                              budget, sizes, default_size)


# ----------------------------------------------------------------------
# inbox items
# ----------------------------------------------------------------------
@dataclass
class EventBatch:
    """One accepted ``events`` batch, already decoded and deduped."""

    references: List[ObservedReference]


@dataclass
class FillRequest:
    budget: int
    sizes: Optional[Dict[str, int]]
    default_size: int
    future: "asyncio.Future[Dict[str, Any]]"


@dataclass
class StatsRequest:
    future: "asyncio.Future[Dict[str, Any]]"


@dataclass
class CheckpointRequest:
    future: "asyncio.Future[Dict[str, Any]]"


@dataclass
class DrainBarrier:
    """Sentinel the daemon enqueues to wait until an inbox is empty."""

    future: "asyncio.Future[Dict[str, Any]]"


InboxItem = Union[EventBatch, FillRequest, StatsRequest, CheckpointRequest,
                  DrainBarrier]


# ----------------------------------------------------------------------
# the actor
# ----------------------------------------------------------------------
class TenantActor:
    """One tenant's pipeline plus its inbox.

    The daemon guarantees that at most one worker processes an actor's
    inbox at a time (each tenant hashes to exactly one shard), so the
    methods below never run concurrently for one tenant and need no
    internal locking.  The correlator records into a *tenant-local*
    :class:`~repro.observability.Metrics`; the daemon absorbs those
    counters into its service-wide registry on demand, which is why
    ``Metrics.absorb_counters`` had to become thread/task-safe.
    """

    def __init__(self, tenant: str,
                 parameters: SeerParameters = DEFAULT_PARAMETERS,
                 queue_bound: int = 1024) -> None:
        self.tenant = tenant
        self.parameters = parameters
        self.pipeline_metrics = Metrics()
        self.correlator = Correlator(parameters,
                                     metrics=self.pipeline_metrics)
        self.hoard = HoardManager(parameters)
        self.inbox: "asyncio.Queue[InboxItem]" = \
            asyncio.Queue(maxsize=queue_bound)
        #: Set while the actor sits in (or is being drained from) a
        #: shard run queue; daemon-side scheduling state.
        self.scheduled = False
        self.last_seq = 0
        self.events_ingested = 0
        self.duplicates_dropped = 0
        self.fills_answered = 0
        self.busy_seconds = 0.0
        self.restored_from_checkpoint = False

    # -- ingestion -----------------------------------------------------
    def dedupe(self, references: Sequence[ObservedReference]
               ) -> List[ObservedReference]:
        """Drop already-applied deliveries (at-least-once -> once).

        The cursor only advances in :meth:`apply`, so deduping at
        enqueue time is also safe against a redelivery racing a queued
        original: both copies would be enqueued, and the second one is
        dropped again at apply time.
        """
        return [reference for reference in references
                if reference.seq > self.last_seq]

    def apply(self, batch: EventBatch) -> int:
        """Apply one inbox batch to the correlator; returns the count."""
        applied = 0
        for reference in batch.references:
            if reference.seq <= self.last_seq:
                self.duplicates_dropped += 1
                continue
            self.correlator.handle(reference)
            self.last_seq = reference.seq
            applied += 1
        self.events_ingested += applied
        return applied

    # -- requests ------------------------------------------------------
    def hoard_fill(self, request: FillRequest) -> Dict[str, Any]:
        self.fills_answered += 1
        return hoard_fill_payload(self.correlator, self.hoard,
                                  request.budget, request.sizes,
                                  request.default_size)

    def stats(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "events_ingested": self.events_ingested,
            "duplicates_dropped": self.duplicates_dropped,
            "fills_answered": self.fills_answered,
            "last_seq": self.last_seq,
            "references_processed": self.correlator.references_processed,
            "known_files": len(self.correlator.known_files()),
            "queue_depth": self.inbox.qsize(),
            "restored_from_checkpoint": self.restored_from_checkpoint,
        }

    # -- checkpointing -------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """JSON-lossless checkpoint payload for the PR 6 state store.

        Matching :mod:`repro.core.persistence`, per-process streams are
        deliberately not saved: client processes do not survive a
        daemon restart, and the batch half of the kill/restart
        differential test performs the same dump/load at the same
        event index so the two sides lose exactly the same state.
        """
        return {
            "format": TENANT_STATE_VERSION,
            "tenant": self.tenant,
            "last_seq": self.last_seq,
            "events_ingested": self.events_ingested,
            "correlator": dump_correlator(self.correlator),
        }

    def load_state(self, data: Dict[str, Any]) -> None:
        if data.get("format") != TENANT_STATE_VERSION:
            raise ValueError(f"unsupported tenant state format: "
                             f"{data.get('format')!r}")
        if data.get("tenant") != self.tenant:
            raise ValueError(f"checkpoint for tenant {data.get('tenant')!r} "
                             f"offered to tenant {self.tenant!r}")
        self.correlator = load_correlator(data["correlator"],
                                          parameters=self.parameters)
        # The loaded correlator's engine is wired to its own registry;
        # adopt it.  In-memory counters do not survive a restart, by
        # the same reasoning as process streams.
        self.pipeline_metrics = self.correlator.metrics
        self.last_seq = int(data["last_seq"])
        self.events_ingested = int(data["events_ingested"])
        self.restored_from_checkpoint = True


def restart_batch_correlator(correlator: Correlator,
                             parameters: SeerParameters) -> Correlator:
    """The batch-side equivalent of a daemon kill + checkpoint restore.

    Round-trips the correlator through its persistence dump, losing
    per-process streams and pending deletions exactly as a restarted
    daemon does, so a batch replay interrupted at the same event index
    stays byte-comparable to the online session.
    """
    return load_correlator(dump_correlator(correlator),
                           parameters=parameters)
