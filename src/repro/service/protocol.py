"""The hoard-daemon wire protocol: newline-delimited JSON, version 1.

One message per line, UTF-8, compact JSON with no embedded newlines.
Requests carry a ``type``, usually a ``tenant``, and an optional
client-chosen ``id`` that the response echoes, so a client can pipeline
requests and still correlate answers.  The full message catalogue,
framing and versioning rules live in ``docs/service.md``; this module
is the single source of truth for encoding, decoding and validation,
shared by the daemon and the client so the two cannot drift.

Trace references travel in a compact array form --
``[seq, time, pid, action, path, path2, ppid]`` -- matching the fields
of :class:`~repro.core.correlator.ObservedReference`.  ``seq`` is the
tenant-monotonic delivery sequence the at-least-once dedupe keys on
(redelivered events with ``seq <=`` the last applied one are dropped),
so a client that resends an unacknowledged batch after a reconnect
converges to exactly-once application.

Hoard responses are rendered through :func:`selection_to_data` /
:func:`clusters_to_data` into canonical, JSON-lossless payloads.  The
differential gate compares these bytes between an online session and a
batch replay, which is why the daemon and the batch helper in
:mod:`repro.service.tenant` both answer through these functions.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.core.clustering import ClusterSet
from repro.core.correlator import Action, ObservedReference
from repro.core.hoard import HoardSelection

#: Bump when a message changes shape.  The daemon answers requests
#: carrying another version with an ``unsupported-version`` error and
#: keeps the connection open, so a mixed fleet fails loudly per
#: request instead of corrupting tenant state.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line; a longer line is a protocol error.
#: Generous enough for a several-thousand-event batch, small enough
#: that a stuck or hostile client cannot balloon daemon memory.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Tenant ids key actor state and checkpoint shard ids (filesystem
#: paths under the json store backend), so they are restricted to a
#: filesystem-safe alphabet.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Request types the daemon understands.
REQUEST_TYPES = ("hello", "events", "hoard_fill", "stats", "checkpoint",
                 "ping")


class ProtocolError(ValueError):
    """A malformed or unacceptable message.

    ``code`` is a stable machine-readable token (documented in
    ``docs/service.md``); the string form carries the human detail.
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dictionary."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError("oversized", f"frame of {len(raw)} bytes "
                            f"exceeds the {MAX_LINE_BYTES}-byte limit")
    try:
        message = json.loads(raw)
    except ValueError as error:
        raise ProtocolError("bad-json", f"undecodable frame: {error}") \
            from None
    if not isinstance(message, dict):
        raise ProtocolError("bad-message", "frame is not a JSON object")
    return message


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def validate_tenant(tenant: object) -> str:
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            "bad-tenant",
            f"tenant id {tenant!r} must match {_TENANT_RE.pattern}")
    return tenant


def validate_request(message: Dict[str, Any]) -> str:
    """Check type and version; returns the request type."""
    kind = message.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError("unknown-type",
                            f"unknown request type {kind!r} "
                            f"(known: {', '.join(REQUEST_TYPES)})")
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError("unsupported-version",
                            f"protocol version {version!r} is not "
                            f"supported (this daemon speaks "
                            f"{PROTOCOL_VERSION})")
    return str(kind)


# ----------------------------------------------------------------------
# trace references on the wire
# ----------------------------------------------------------------------
def reference_to_wire(reference: ObservedReference) -> List[Any]:
    """Compact array form of one classified reference."""
    return [reference.seq, reference.time, reference.pid,
            reference.action.value, reference.path, reference.path2,
            reference.ppid]


def reference_from_wire(data: object) -> ObservedReference:
    """Exact inverse of :func:`reference_to_wire`, validating shape."""
    if not isinstance(data, (list, tuple)) or len(data) != 7:
        raise ProtocolError("bad-event",
                            f"event must be a 7-element array, got {data!r}")
    seq, time, pid, action, path, path2, ppid = data
    if not isinstance(seq, int) or not isinstance(pid, int) or \
            not isinstance(ppid, int):
        raise ProtocolError("bad-event",
                            f"seq/pid/ppid must be integers in {data!r}")
    if not isinstance(time, (int, float)) or isinstance(time, bool):
        raise ProtocolError("bad-event", f"time must be a number in {data!r}")
    if not isinstance(path, str) or not isinstance(path2, str):
        raise ProtocolError("bad-event", f"paths must be strings in {data!r}")
    try:
        parsed = Action(action)
    except ValueError:
        raise ProtocolError("bad-event",
                            f"unknown action {action!r}") from None
    return ObservedReference(seq=seq, time=float(time), pid=pid,
                             action=parsed, path=path, path2=path2,
                             ppid=ppid)


def references_from_wire(data: object) -> List[ObservedReference]:
    if not isinstance(data, list):
        raise ProtocolError("bad-event", "'records' must be an array")
    return [reference_from_wire(item) for item in data]


def references_to_wire(
        references: Sequence[ObservedReference]) -> List[List[Any]]:
    return [reference_to_wire(reference) for reference in references]


# ----------------------------------------------------------------------
# canonical hoard / cluster payloads (the differential-gate surface)
# ----------------------------------------------------------------------
def clusters_to_data(clusters: ClusterSet) -> Dict[str, Any]:
    """Canonical JSON-lossless form of a cluster set.

    Cluster ids keep their construction order (the byte-identity gate
    covers the ids themselves, not just the member sets); members are
    sorted so two structurally equal sets serialize identically.
    """
    return {
        "cluster_ids": list(clusters.cluster_ids()),
        "members": {str(cluster_id): sorted(clusters.members(cluster_id))
                    for cluster_id in clusters.cluster_ids()},
    }


def selection_to_data(selection: HoardSelection,
                      clusters: Optional[ClusterSet] = None) -> Dict[str, Any]:
    """Canonical JSON-lossless form of one hoard-filling decision."""
    data: Dict[str, Any] = {
        "files": sorted(selection.files),
        "total_bytes": selection.total_bytes,
        "budget": selection.budget,
        "always_hoarded": sorted(selection.always_hoarded),
        "clusters_included": list(selection.clusters_included),
        "clusters_skipped": list(selection.clusters_skipped),
    }
    if clusters is not None:
        data["clusters"] = clusters_to_data(clusters)
    return data


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def response(kind: str, request: Dict[str, Any],
             **fields: Any) -> Dict[str, Any]:
    """A response frame of *kind*, echoing the request's ``id``."""
    message: Dict[str, Any] = {"type": kind, "v": PROTOCOL_VERSION}
    if "id" in request:
        message["id"] = request["id"]
    message.update(fields)
    return message


def error_response(request: Dict[str, Any],
                   error: ProtocolError) -> Dict[str, Any]:
    return response("error", request, code=error.code, error=error.detail)
