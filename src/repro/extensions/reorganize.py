"""Directory reorganization from SEER's clusters (paper section 7).

If SEER's clusters are the *true* project structure, the directory
tree ought to match them: files of one project in one directory.  This
module measures how far a tree is from that ideal
(:func:`misplacement_score`) and proposes moves that would align it
(:func:`propose_reorganization`) -- the "directory reorganization"
application the paper names as future work.

A cluster's *home* is the directory holding the plurality of its
members; members living elsewhere are misplaced.  Files in several
clusters (a compiler, a shared header) are anchored by the cluster
that holds them most tightly and are never proposed for a move out of
a shared system area.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.clustering import ClusterSet
from repro.fs.paths import basename, dirname


@dataclass(frozen=True)
class Move:
    """One proposed relocation."""

    source: str
    destination: str
    cluster_id: int

    @property
    def destination_path(self) -> str:
        return self.destination.rstrip("/") + "/" + basename(self.source)


@dataclass
class ReorganizationPlan:
    """The proposed moves plus before/after scores."""

    moves: List[Move] = field(default_factory=list)
    homes: Dict[int, str] = field(default_factory=dict)
    score_before: float = 0.0
    score_after: float = 0.0

    @property
    def improvement(self) -> float:
        return self.score_before - self.score_after


def cluster_home(members: Set[str]) -> Optional[str]:
    """The directory holding the plurality of *members* (ties: the
    lexicographically first, for determinism)."""
    if not members:
        return None
    counts = Counter(dirname(path) for path in members)
    best = max(counts.items(), key=lambda item: (item[1], -len(item[0]),
                                                 item[0] == sorted(counts)[0]))
    # Deterministic plurality: highest count, then lexicographic.
    top_count = max(counts.values())
    candidates = sorted(d for d, c in counts.items() if c == top_count)
    return candidates[0]


def misplacement_score(clusters: ClusterSet,
                       protected_prefixes: Sequence[str] = ("/bin", "/lib",
                                                            "/etc", "/dev")
                       ) -> float:
    """Fraction of cluster memberships living outside their cluster's
    home directory (0.0 = the tree matches the clusters exactly)."""
    total = 0
    misplaced = 0
    for cluster_id in clusters.cluster_ids():
        members = clusters.members(cluster_id)
        if len(members) < 2:
            continue
        home = cluster_home(members)
        for path in members:
            if any(path.startswith(prefix) for prefix in protected_prefixes):
                continue
            total += 1
            if dirname(path) != home:
                misplaced += 1
    return misplaced / total if total else 0.0


def propose_reorganization(clusters: ClusterSet,
                           protected_prefixes: Sequence[str] = ("/bin", "/lib",
                                                                "/etc", "/dev")
                           ) -> ReorganizationPlan:
    """Propose moving each misplaced file to its anchor cluster's home.

    A file in several clusters is anchored to its smallest containing
    cluster (the tightest grouping).  System areas are never touched.
    """
    plan = ReorganizationPlan()
    plan.score_before = misplacement_score(clusters, protected_prefixes)

    anchor: Dict[str, int] = {}
    for path in clusters.files():
        containing = clusters.clusters_of(path)
        multi = [c for c in containing if len(clusters.members(c)) >= 2]
        if not multi:
            continue
        anchor[path] = min(multi, key=lambda c: (len(clusters.members(c)), c))

    for cluster_id in clusters.cluster_ids():
        members = clusters.members(cluster_id)
        if len(members) < 2:
            continue
        home = cluster_home(members)
        plan.homes[cluster_id] = home
        for path in sorted(members):
            if any(path.startswith(prefix) for prefix in protected_prefixes):
                continue
            if anchor.get(path) != cluster_id:
                continue   # anchored elsewhere: that cluster decides
            if dirname(path) != home:
                plan.moves.append(Move(source=path, destination=home,
                                       cluster_id=cluster_id))

    # Score the tree as it would look after the moves.
    moved = {move.source: move.destination_path for move in plan.moves}
    relocated = _relocate_clusters(clusters, moved)
    plan.score_after = misplacement_score(relocated, protected_prefixes)
    return plan


def _relocate_clusters(clusters: ClusterSet,
                       moved: Mapping[str, str]) -> ClusterSet:
    relocated = ClusterSet()
    for cluster_id in clusters.cluster_ids():
        relocated.new_cluster(moved.get(path, path)
                              for path in clusters.members(cluster_id))
    return relocated
