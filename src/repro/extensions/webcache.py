"""Web caching with SEER's semantic clustering (paper section 7).

The observation transfers directly: URL requests from one client are a
reference stream with strong semantic locality (pages of one site or
one task are requested together).  The machinery transfers too -- each
client plays the role of a process, each URL the role of a file, and
each request is a point reference fed to the unchanged
:class:`~repro.core.correlator.Correlator`.  The resulting clusters
("browsing projects") drive prefetching: on a miss, the cache fetches
the requested page *and* its cluster-mates, so the rest of the visit
hits.

The comparison, mirroring Figure 2's structure:

* :class:`LruWebCache` -- a classic capacity-bounded LRU page cache;
* :class:`PrefetchingWebCache` -- the same cache plus cluster
  prefetching from a :class:`WebCorrelator`.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import ClusterSet
from repro.core.correlator import Action, Correlator, ObservedReference
from repro.core.parameters import SeerParameters


@dataclass(frozen=True)
class UrlRequest:
    """One page request."""

    time: float
    client: int
    url: str


def url_to_path(url: str) -> str:
    """Normalize a URL to a pseudo-path so directory distance works.

    ``http://site-a/docs/x.html`` -> ``/site-a/docs/x.html``: the host
    becomes the first component, so pages of one site are "in nearby
    directories" exactly as project files are.
    """
    without_scheme = url.split("://", 1)[-1]
    return "/" + without_scheme.strip("/")


#: Parameters tuned for URL streams: sessions are short and the URL
#: population small, so tables must stay tight for nearest-neighbor
#: selection to discriminate; normalized thresholds handle sites of
#: any size.
WEB_PARAMETERS = SeerParameters(
    max_neighbors=5, lookback_window=50, compensation_distance=50,
    normalize_shared_counts=True, kn_fraction=0.6, kf_fraction=0.35)


class WebCorrelator:
    """Feeds URL requests to an unchanged SEER correlator.

    Requests from one client are split into *sessions* at idle gaps of
    ``session_gap`` seconds; each session is its own reference stream
    (its own "process"), so the last page of one session is not
    spuriously adjacent to the first page of the next.  This is the
    web-domain twist on section 4.7's stream separation.
    """

    def __init__(self, parameters: SeerParameters = WEB_PARAMETERS,
                 session_gap: float = 300.0) -> None:
        self.correlator = Correlator(parameters)
        self.session_gap = session_gap
        self._seq = 0
        self._url_of_path: Dict[str, str] = {}
        self._last_time: Dict[int, float] = {}
        self._session: Dict[int, int] = {}

    def _stream_id(self, request: UrlRequest) -> int:
        last = self._last_time.get(request.client)
        if last is None or request.time - last > self.session_gap:
            self._session[request.client] = \
                self._session.get(request.client, 0) + 1
        self._last_time[request.client] = request.time
        return request.client * 1_000_000 + self._session[request.client]

    def observe(self, request: UrlRequest) -> None:
        self._seq += 1
        path = url_to_path(request.url)
        self._url_of_path[path] = request.url
        self.correlator.handle(ObservedReference(
            seq=self._seq, time=request.time, pid=self._stream_id(request),
            action=Action.POINT, path=path))

    def clusters(self) -> ClusterSet:
        return self.correlator.build_clusters()

    def cluster_mates(self, url: str, clusters: Optional[ClusterSet] = None,
                      limit: int = 10) -> List[str]:
        """The most closely related pages, nearest first."""
        path = url_to_path(url)
        if clusters is None:
            clusters = self.clusters()
        mates = clusters.project_of(path) - {path}
        table = self.correlator.store.get(path)
        def nearness(other: str) -> float:
            return table.distance_to(other) if table is not None else float("inf")
        ranked = sorted(mates, key=lambda other: (nearness(other), other))
        return [self._url_of_path.get(p, p.lstrip("/"))
                for p in ranked[:limit]]


@dataclass
class CacheResult:
    """Hit/miss accounting for one simulated cache."""

    name: str
    capacity: int
    requests: int = 0
    hits: int = 0
    prefetches_issued: int = 0
    prefetched_hits: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetched_hits / self.prefetches_issued


class LruWebCache:
    """A capacity-bounded LRU page cache (entries, not bytes)."""

    def __init__(self, capacity: int, name: str = "lru") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.result = CacheResult(name=name, capacity=capacity)
        self._pages: "OrderedDict[str, bool]" = OrderedDict()
        self._prefetched: Set[str] = set()

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def _insert(self, url: str) -> None:
        if url in self._pages:
            self._pages.move_to_end(url)
            return
        while len(self._pages) >= self.capacity:
            evicted, _ = self._pages.popitem(last=False)
            self._prefetched.discard(evicted)
        self._pages[url] = True

    def request(self, request: UrlRequest) -> bool:
        """Serve one request; returns True on a cache hit."""
        self.result.requests += 1
        url = request.url
        if url in self._pages:
            self.result.hits += 1
            if url in self._prefetched:
                self.result.prefetched_hits += 1
                self._prefetched.discard(url)
            self._pages.move_to_end(url)
            return True
        self._insert(url)
        return False


class PrefetchingWebCache(LruWebCache):
    """LRU plus SEER-cluster prefetching on every miss."""

    def __init__(self, capacity: int,
                 correlator: Optional[WebCorrelator] = None,
                 prefetch_limit: int = 5,
                 recluster_every: int = 200) -> None:
        super().__init__(capacity, name="seer-prefetch")
        self.web = correlator if correlator is not None else WebCorrelator()
        self.prefetch_limit = prefetch_limit
        self.recluster_every = recluster_every
        self._clusters: Optional[ClusterSet] = None
        self._since_recluster = 0

    def _current_clusters(self) -> ClusterSet:
        self._since_recluster += 1
        if self._clusters is None or \
                self._since_recluster >= self.recluster_every:
            self._clusters = self.web.clusters()
            self._since_recluster = 0
        return self._clusters

    def request(self, request: UrlRequest) -> bool:
        hit = super().request(request)
        self.web.observe(request)
        if not hit:
            clusters = self._current_clusters()
            mates = self.web.cluster_mates(request.url, clusters,
                                           limit=self.prefetch_limit)
            for url in mates:
                if url not in self._pages:
                    self.result.prefetches_issued += 1
                    self._insert(url)
                    self._prefetched.add(url)
        return hit


# ----------------------------------------------------------------------
# synthetic browsing workload
# ----------------------------------------------------------------------
class BrowsingWorkload:
    """Clients visiting sites with strong within-site locality.

    Each site has a set of pages; a *visit* is a run of requests for
    pages of one site (an entry page plus a random walk).  Clients
    interleave, and revisits of a site are common -- the structure
    prefetching exploits.
    """

    def __init__(self, n_sites: int = 12, pages_per_site: int = 8,
                 n_clients: int = 3, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.sites = [
            [f"site-{s}/page{p}.html" for p in range(pages_per_site)]
            for s in range(n_sites)
        ]
        self.n_clients = n_clients
        self._clock = 0.0

    def all_urls(self) -> List[str]:
        return [url for site in self.sites for url in site]

    def generate(self, n_visits: int) -> List[UrlRequest]:
        requests: List[UrlRequest] = []
        # Zipf-ish site popularity.
        weights = [1.0 / (rank + 1) for rank in range(len(self.sites))]
        for _ in range(n_visits):
            site = self.rng.choices(self.sites, weights=weights)[0]
            client = self.rng.randrange(self.n_clients)
            # Users go idle between visits: the session boundary the
            # correlator keys on.
            self._clock += self.rng.uniform(400.0, 3600.0)
            pages = [site[0]] + self.rng.sample(
                site[1:], k=self.rng.randint(2, len(site) - 1))
            for url in pages:
                self._clock += self.rng.uniform(1.0, 30.0)
                requests.append(UrlRequest(time=self._clock, client=client,
                                           url=url))
        return requests


def simulate_web_caching(requests: Sequence[UrlRequest], capacity: int,
                         prefetch_limit: int = 5
                         ) -> Tuple[CacheResult, CacheResult]:
    """Run LRU and SEER-prefetch caches over the same request stream.

    Returns ``(lru_result, prefetch_result)``.
    """
    lru = LruWebCache(capacity)
    prefetching = PrefetchingWebCache(capacity,
                                      prefetch_limit=prefetch_limit)
    for request in requests:
        lru.request(request)
        prefetching.request(request)
    return lru.result, prefetching.result
