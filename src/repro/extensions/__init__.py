"""Applications of SEER's methods beyond file hoarding.

Section 7: "the predictive and inferential methods pioneered by SEER
hold promise for other applications, such as Web caching, network file
systems, and directory reorganization.  We are currently investigating
ways to apply our work to these and similar areas."  This package
implements two of those investigations:

* :mod:`repro.extensions.webcache` -- semantic-distance clustering of
  URL request streams drives a prefetching cache, compared against a
  plain LRU cache;
* :mod:`repro.extensions.reorganize` -- directory reorganization:
  given SEER's clusters, propose a layout in which directories match
  projects, and score how "misplaced" the current tree is.
"""

from repro.extensions.reorganize import (
    ReorganizationPlan,
    misplacement_score,
    propose_reorganization,
)
from repro.extensions.webcache import (
    BrowsingWorkload,
    CacheResult,
    LruWebCache,
    PrefetchingWebCache,
    UrlRequest,
    WebCorrelator,
    simulate_web_caching,
)

__all__ = [
    "BrowsingWorkload",
    "CacheResult",
    "LruWebCache",
    "PrefetchingWebCache",
    "ReorganizationPlan",
    "UrlRequest",
    "WebCorrelator",
    "misplacement_score",
    "propose_reorganization",
    "simulate_web_caching",
]
