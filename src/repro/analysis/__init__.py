"""Rendering the paper's tables and figures from simulation results."""

from repro.analysis.figures import render_figure2, render_figure3
from repro.analysis.population import (
    PopulationAggregate,
    aggregate_from_data,
    aggregate_to_data,
    bootstrap_band,
    percentile,
    render_population_report,
)
from repro.analysis.report import ReproductionReport, run_reproduction
from repro.analysis.tables import (
    render_table1,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "PopulationAggregate",
    "ReproductionReport",
    "aggregate_from_data",
    "aggregate_to_data",
    "bootstrap_band",
    "percentile",
    "render_figure2",
    "render_figure3",
    "render_population_report",
    "render_table1",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_reproduction",
]
