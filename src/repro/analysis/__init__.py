"""Rendering the paper's tables and figures from simulation results."""

from repro.analysis.figures import render_figure2, render_figure3
from repro.analysis.report import ReproductionReport, run_reproduction
from repro.analysis.tables import (
    render_table1,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "ReproductionReport",
    "render_figure2",
    "render_figure3",
    "render_table1",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_reproduction",
]
