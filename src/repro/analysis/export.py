"""Machine-readable result export (JSON and CSV).

The text renderers in :mod:`repro.analysis.tables` mirror the paper's
layout; downstream analysis wants structured data instead.  These
functions flatten simulation results into plain dictionaries and write
them as JSON documents or CSV tables.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from repro.core.hoard import MissSeverity
from repro.simulation.live import LiveResult
from repro.simulation.missfree import MissFreeResult

MB = 1024 * 1024


def missfree_rows(results: Sequence[MissFreeResult]) -> List[Dict]:
    """One row per simulated window."""
    rows: List[Dict] = []
    for result in results:
        for window in result.windows:
            rows.append({
                "machine": result.machine,
                "window_seconds": result.window_seconds,
                "investigators": result.use_investigators,
                "seed": result.seed,
                "window_index": window.index,
                "referenced_files": window.referenced_files,
                "working_set_bytes": window.working_set_bytes,
                "seer_bytes": window.seer_bytes,
                "lru_bytes": window.lru_bytes,
                "spy_bytes": window.spy_bytes,
                "uncoverable_files": window.uncoverable_files,
            })
    return rows


def missfree_summary(results: Sequence[MissFreeResult]) -> List[Dict]:
    """One row per (machine, window, investigators, seed)."""
    return [{
        "machine": result.machine,
        "window_seconds": result.window_seconds,
        "investigators": result.use_investigators,
        "seed": result.seed,
        "windows": len(result.windows),
        "mean_working_set_mb": result.mean_working_set / MB,
        "mean_seer_mb": result.mean_seer / MB,
        "mean_lru_mb": result.mean_lru / MB,
        "lru_to_seer_ratio": result.lru_to_seer_ratio,
    } for result in results]


def live_rows(results: Sequence[LiveResult]) -> List[Dict]:
    """One row per machine: the Tables 3+4 content, flattened."""
    rows: List[Dict] = []
    for result in results:
        stats = result.disconnection_statistics()
        row = {
            "machine": result.machine,
            "hoard_budget_bytes": result.hoard_budget,
            "disconnections": stats.count,
            "total_hours": stats.total,
            "mean_hours": stats.mean,
            "median_hours": stats.median,
            "std_hours": stats.std,
            "max_hours": stats.maximum,
            "failed_any_severity": result.failures_any_severity(),
            "automatic_detections": result.automatic_detections(),
        }
        for severity in MissSeverity:
            row[f"failures_severity_{severity.value}"] = \
                result.failures_at_severity(severity)
        rows.append(row)
    return rows


def to_json(rows: Sequence[Dict]) -> str:
    return json.dumps(list(rows), indent=2, sort_keys=True)


def to_csv(rows: Sequence[Dict]) -> str:
    """Render *rows* as CSV with a stable, sorted header."""
    if not rows:
        return ""
    fieldnames = sorted({key for row in rows for key in row})
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_json(rows: Sequence[Dict], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(to_json(rows) + "\n")


def write_csv(rows: Sequence[Dict], path: str) -> None:
    with open(path, "w", encoding="utf-8", newline="") as stream:
        stream.write(to_csv(rows))
