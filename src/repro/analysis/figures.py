"""ASCII renderings of Figures 2 and 3.

Figure 2 stacks, for each machine and disconnection length, the mean
working set, SEER's additional miss-free space, and LRU's additional
space.  Figure 3 plots the per-window series for one machine sorted by
working-set size.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.simulation.missfree import MissFreeResult
from repro.simulation.stats import ci99_halfwidth

MB = 1024 * 1024


def _bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(value / scale * width)) if scale > 0 else 0
    return "#" * max(0, min(filled, width))


def render_figure2(results: Sequence[MissFreeResult],
                   show_ci: bool = True) -> str:
    """Figure 2: mean working sets and miss-free hoard sizes.

    *results* holds one entry per (machine, window, investigators)
    combination -- or several per combination (different seeds), which
    are averaged and given 99 % confidence intervals.
    """
    grouped: Dict[Tuple[str, float, bool], List[MissFreeResult]] = {}
    for result in results:
        key = (result.machine, result.window_seconds, result.use_investigators)
        grouped.setdefault(key, []).append(result)

    rows = []
    for (machine, window, investigators), group in sorted(
            grouped.items(), key=lambda item: (item[0][0], item[0][2], item[0][1])):
        ws = [r.mean_working_set for r in group]
        seer = [r.mean_seer for r in group]
        lru = [r.mean_lru for r in group]
        label = machine + ("*" if investigators else "")
        period = "daily" if window <= 2 * 86400 else "weekly"
        rows.append((label, period,
                     sum(ws) / len(ws), ci99_halfwidth(ws),
                     sum(seer) / len(seer), ci99_halfwidth(seer),
                     sum(lru) / len(lru), ci99_halfwidth(lru)))

    scale = max((row[6] for row in rows), default=1.0)
    lines = [
        "Figure 2: Mean working sets and miss-free hoard sizes",
        "(W = working set, S = additional space needed by SEER,",
        " L = additional space needed by LRU; * = with investigators)",
        "",
    ]
    for label, period, ws, ws_ci, seer, seer_ci, lru, lru_ci in rows:
        ws_part = _bar(ws, scale)
        seer_part = _bar(max(0.0, seer - ws), scale).replace("#", "S")
        lru_part = _bar(max(0.0, lru - seer), scale).replace("#", "L")
        ci = (f"  (ws +/- {ws_ci / MB:.2f}, seer +/- {seer_ci / MB:.2f}, "
              f"lru +/- {lru_ci / MB:.2f} MB)") if show_ci and ws_ci else ""
        lines.append(
            f"{label:<3}{period:<7} |{ws_part}{seer_part}{lru_part}")
        lines.append(
            f"{'':10} ws={ws / MB:6.2f}  seer={seer / MB:6.2f}  "
            f"lru={lru / MB:6.2f} MB{ci}")
    return "\n".join(lines)


def render_figure3(result: MissFreeResult, width: int = 50) -> str:
    """Figure 3: per-window sizes for one machine, sorted by working set.

    Each X position is one simulated weekly disconnection; the series
    are the working set, SEER's miss-free size and LRU's.
    """
    windows = sorted(result.windows, key=lambda w: w.working_set_bytes)
    if not windows:
        return "Figure 3: (no windows)"
    scale = max(w.lru_bytes for w in windows) or 1
    lines = [
        f"Figure 3: Hoard sizes vs. sorted working sets "
        f"(machine {result.machine}, weekly disconnections)",
        f"{'#':>3} {'WS(MB)':>8} {'SEER':>8} {'LRU':>8}   "
        f"W=working set  S=seer  L=lru",
    ]
    for index, window in enumerate(windows):
        ws_bar = _bar(window.working_set_bytes, scale, width)
        seer_bar = _bar(max(0, window.seer_bytes - window.working_set_bytes),
                        scale, width).replace("#", "S")
        lru_bar = _bar(max(0, window.lru_bytes - window.seer_bytes),
                       scale, width).replace("#", "L")
        lines.append(
            f"{index:>3} {window.working_set_bytes / MB:>8.2f} "
            f"{window.seer_bytes / MB:>8.2f} {window.lru_bytes / MB:>8.2f}   "
            f"|{ws_bar}{seer_bar}{lru_bar}")
    return "\n".join(lines)
