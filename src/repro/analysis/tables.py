"""Text renderings of the paper's tables.

Each function takes the corresponding simulation results and prints the
same rows the paper reports, so a benchmark run can be compared against
the published tables side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.hoard import MissSeverity
from repro.simulation.live import LiveResult
from repro.simulation.stats import summarize

MB = 1024 * 1024


def render_table1() -> str:
    """Table 1: the clustering decision rules (static)."""
    return "\n".join([
        "Table 1: Summary of clustering algorithm (x = shared neighbors)",
        "  kn <= x       Clusters combined into one",
        "  kf <= x < kn  Files inserted, but clusters not combined",
        "  x < kf        No action",
    ])


def render_table3(results: Sequence[LiveResult]) -> str:
    """Table 3: disconnection statistics per user."""
    lines = [
        "Table 3: Disconnection statistics",
        f"{'User':<5}{'Disc.':>6}{'Total(h)':>10}{'Mean':>8}{'Median':>8}"
        f"{'Std':>8}{'Max':>8}",
    ]
    for result in results:
        stats = result.disconnection_statistics()
        lines.append(
            f"{result.machine:<5}{stats.count:>6}{stats.total:>10.0f}"
            f"{stats.mean:>8.2f}{stats.median:>8.2f}{stats.std:>8.2f}"
            f"{stats.maximum:>8.2f}")
    return "\n".join(lines)


def render_table4(results: Sequence[LiveResult]) -> str:
    """Table 4: failed disconnections at each severity.

    All-zero rows are omitted, as in the paper.
    """
    lines = [
        "Table 4: Summary of failed disconnections at various severities",
        f"{'User':<5}{'Hoard(MB)':>10}" +
        "".join(f"{s.value:>5}" for s in MissSeverity) +
        f"{'AnySev':>8}{'Auto':>6}",
    ]
    for result in results:
        per_severity = [result.failures_at_severity(s) for s in MissSeverity]
        any_sev = result.failures_any_severity()
        auto = result.automatic_detections()
        if not any(per_severity) and not auto:
            continue
        lines.append(
            f"{result.machine:<5}{result.hoard_budget / MB:>10.2f}" +
            "".join(f"{count:>5}" for count in per_severity) +
            f"{any_sev:>8}{auto:>6}")
    if len(lines) == 2:
        lines.append("(no failed disconnections)")
    return "\n".join(lines)


def render_table5(results: Sequence[LiveResult]) -> str:
    """Table 5: hours until first miss for failed disconnections.

    Rows with zero misses are omitted; the median is omitted when there
    are fewer than 4 samples, exactly as the paper formats it.
    """
    lines = [
        "Table 5: Hours until first miss for failed disconnections",
        f"{'User':<5}{'Sev.':<6}{'Mean':>8}{'Median':>8}{'Std':>8}"
        f"{'Min':>8}{'Max':>8}",
    ]
    for result in results:
        rows: List = [(str(s.value), result.first_miss_hours(severity=s))
                      for s in MissSeverity]
        rows.append(("Auto", result.first_miss_hours(automatic=True)))
        for label, values in rows:
            if not values:
                continue
            stats = summarize(values)
            median = f"{stats.median:>8.2f}" if stats.count >= 4 else f"{'--':>8}"
            std = f"{stats.std:>8.2f}" if stats.count >= 2 else f"{'--':>8}"
            lines.append(
                f"{result.machine:<5}{label:<6}{stats.mean:>8.2f}{median}"
                f"{std}{stats.minimum:>8.2f}{stats.maximum:>8.2f}")
    if len(lines) == 2:
        lines.append("(no misses)")
    return "\n".join(lines)
