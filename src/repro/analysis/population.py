"""Population-level analysis: curves, confidence bands and strata.

The paper's evaluation reports nine machines one row at a time; a
fleet-scale sweep (ROADMAP item 5) produces thousands of reduced
:class:`~repro.simulation.population.PopulationCellResult` scorecards
instead.  This module turns a stream of those cells into one report:

* **population curves** -- each algorithm's per-machine mean miss-free
  hoard size as a function of population percentile, so "SEER needs
  less space than LRU" becomes a statement about a distribution, not
  an anecdote;
* **bootstrap confidence bands** -- 95 % percentile-bootstrap
  intervals on every headline mean, seeded and fully deterministic
  (the same aggregate renders the same bytes on every host);
* **strata** -- the same comparison cut by activity regime and by
  disconnection regime, including the machines that never disconnect.

Everything consumes the runner's streaming ``consume=`` callback, so
aggregating a population of N machines holds O(N) scorecards and no
window-level data.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.population import PopulationCellResult
from repro.simulation.runner import ShardOutcome
from repro.simulation.serde import population_from_data, population_to_data

MB = 1024 * 1024

#: The four ranked-hoard algorithms a population cell scores, in
#: report order, with the working set (the optimal bound) first.
_SIZE_COLUMNS: Tuple[Tuple[str, Callable[[PopulationCellResult], float]],
                     ...] = (
    ("working set", lambda c: c.mean_working_set),
    ("SEER", lambda c: c.mean_seer),
    ("LRU", lambda c: c.mean_lru),
    ("SPY", lambda c: c.mean_spy),
    ("CODA", lambda c: c.mean_coda),
)

#: Activity strata (MachineProfile.activity is the fraction of
#: connected time the simulated user is at the keyboard).
_ACTIVITY_STRATA: Tuple[Tuple[str, float, float], ...] = (
    ("light (<0.2)", 0.0, 0.2),
    ("moderate (0.2-0.5)", 0.2, 0.5),
    ("heavy (>=0.5)", 0.5, float("inf")),
)

#: Disconnection strata over the profile's full measured span; Table 3
#: spans 14-173, and the sampler adds a docked-laptop mixture at zero.
_DISCONNECTION_STRATA: Tuple[Tuple[str, int, int], ...] = (
    ("never (0)", 0, 1),
    ("occasional (1-49)", 1, 50),
    ("frequent (>=50)", 50, 1 << 62),
)


@dataclass
class PopulationAggregate:
    """Everything a population report needs, O(machines) in memory.

    Feed it to :func:`repro.simulation.runner.run_shards` as the
    ``consume=`` callback (via :meth:`consume`) so the grid join never
    materializes the outcome list.
    """

    population_seed: int
    days: float
    cells: List[PopulationCellResult] = field(default_factory=list)

    def consume(self, outcome: ShardOutcome) -> None:
        result = outcome.result
        if not isinstance(result, PopulationCellResult):
            raise TypeError(
                f"population aggregate fed a {type(result).__name__} "
                f"cell ({outcome.spec.shard_id}); the grid must be built "
                f"by population_grid")
        # Drop the per-cell metrics snapshot: the runner has already
        # absorbed the counters, and keeping N snapshots would defeat
        # the compact-scorecard memory contract.
        self.cells.append(_without_metrics(result))

    @property
    def machines(self) -> int:
        return len(self.cells)

    @property
    def window_seconds(self) -> float:
        return self.cells[0].window_seconds if self.cells else 0.0

    def column(self,
               extract: Callable[[PopulationCellResult], float]
               ) -> List[float]:
        return [extract(cell) for cell in self.cells]


def _without_metrics(cell: PopulationCellResult) -> PopulationCellResult:
    if cell.metrics is None:
        return cell
    data = population_to_data(cell)
    data["metrics"] = None
    data.pop("type")
    return PopulationCellResult(**data)


# ----------------------------------------------------------------------
# aggregate persistence (the CLI's --save/--report handoff)
# ----------------------------------------------------------------------
def aggregate_to_data(aggregate: PopulationAggregate) -> Dict:
    """JSON-safe form of an aggregate, for ``population run --save``."""
    return {
        "population_seed": aggregate.population_seed,
        "days": aggregate.days,
        "cells": [population_to_data(cell) for cell in aggregate.cells],
    }


def aggregate_from_data(data: Dict) -> PopulationAggregate:
    return PopulationAggregate(
        population_seed=data["population_seed"],
        days=data["days"],
        cells=[population_from_data(cell) for cell in data["cells"]],
    )


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def bootstrap_band(values: Sequence[float], seed: int,
                   resamples: int = 1000,
                   confidence: float = 0.95) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic: the resampling RNG is seeded (RL002), so the same
    values and seed produce the same band in every process.
    """
    if not values:
        return 0.0, 0.0
    if len(values) == 1:
        return values[0], values[0]
    rng = random.Random(seed)
    n = len(values)
    means = sorted(sum(rng.choices(values, k=n)) / n
                   for _ in range(resamples))
    tail = (1.0 - confidence) / 2.0 * 100.0
    return percentile(means, tail), percentile(means, 100.0 - tail)


def band_seed(base_seed: int, label: str) -> int:
    """Per-column bootstrap seed, derived via crc32 (RL003-safe)."""
    key = f"bootstrap:{base_seed}:{label}".encode("utf-8")
    return zlib.crc32(key) & 0xFFFFFFFF


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# report sections
# ----------------------------------------------------------------------
def _bar(value: float, scale: float, width: int = 30) -> str:
    filled = int(round(value / scale * width)) if scale > 0 else 0
    return "#" * max(0, min(filled, width))


def _headline_section(aggregate: PopulationAggregate, seed: int,
                      resamples: int) -> List[str]:
    lines = ["Mean miss-free hoard size, 95% bootstrap band "
             f"({resamples} resamples)", ""]
    seer_mean = _mean(aggregate.column(lambda c: c.mean_seer))
    for label, extract in _SIZE_COLUMNS:
        values = aggregate.column(extract)
        mean = _mean(values)
        low, high = bootstrap_band(values, band_seed(seed, label),
                                   resamples=resamples)
        versus = ""
        if label not in ("working set", "SEER") and seer_mean > 0:
            versus = f"  ({mean / seer_mean:5.2f}x SEER)"
        lines.append(f"  {label:<12} {mean / MB:8.2f} MB   "
                     f"[{low / MB:8.2f}, {high / MB:8.2f}]{versus}")
    return lines


def _percentile_section(aggregate: PopulationAggregate) -> List[str]:
    steps = (5.0, 25.0, 50.0, 75.0, 95.0)
    header = "  " + f"{'percentile':<12}" + "".join(
        f"{f'p{step:g}':>10}" for step in steps)
    lines = ["Per-machine mean miss-free size percentiles (MB)", "",
             header]
    for label, extract in _SIZE_COLUMNS:
        values = aggregate.column(extract)
        cells = "".join(f"{percentile(values, step) / MB:10.2f}"
                        for step in steps)
        lines.append(f"  {label:<12}{cells}")
    return lines


def _curve_section(aggregate: PopulationAggregate) -> List[str]:
    """The population curve: size vs population percentile.

    Each row is one percentile of the population; S bars are SEER's
    size, L bars extend to LRU's at the same percentile -- the gap
    between them is the population-level version of Figure 2's
    per-machine gap.
    """
    seer = aggregate.column(lambda c: c.mean_seer)
    lru = aggregate.column(lambda c: c.mean_lru)
    scale = percentile(lru, 95.0) or 1.0
    lines = ["Population curve: miss-free size by population percentile",
             "(S = SEER, L = LRU's additional space at that percentile)",
             ""]
    for step in range(10, 100, 10):
        seer_at = percentile(seer, float(step))
        lru_at = percentile(lru, float(step))
        seer_bar = _bar(seer_at, scale).replace("#", "S")
        lru_bar = _bar(max(0.0, lru_at - seer_at), scale).replace("#", "L")
        lines.append(f"  p{step:<3}|{seer_bar}{lru_bar}  "
                     f"seer={seer_at / MB:7.2f}  lru={lru_at / MB:7.2f} MB")
    return lines


def _stratum_rows(aggregate: PopulationAggregate,
                  member: Callable[[PopulationCellResult], bool]
                  ) -> Optional[Tuple[int, float, float, float, float]]:
    cells = [cell for cell in aggregate.cells if member(cell)]
    if not cells:
        return None
    seer = _mean([c.mean_seer for c in cells])
    lru = _mean([c.mean_lru for c in cells])
    ratio = lru / seer if seer else 0.0
    failure = _mean([c.failure_rate for c in cells])
    return len(cells), seer, lru, ratio, failure


def _strata_section(aggregate: PopulationAggregate) -> List[str]:
    lines = ["Strata (count, mean SEER / LRU MB, LRU/SEER, "
             "failed-disconnection rate)", ""]
    lines.append("  by activity:")
    for label, low, high in _ACTIVITY_STRATA:
        row = _stratum_rows(aggregate,
                            lambda c, lo=low, hi=high: lo <= c.activity < hi)
        lines.append(_stratum_line(label, row))
    lines.append("  by disconnection regime:")
    for label, low, high in _DISCONNECTION_STRATA:
        row = _stratum_rows(
            aggregate,
            lambda c, lo=low, hi=high: lo <= c.n_disconnections < hi)
        lines.append(_stratum_line(label, row))
    return lines


def _stratum_line(label: str,
                  row: Optional[Tuple[int, float, float, float, float]]
                  ) -> str:
    if row is None:
        return f"    {label:<22} (no machines)"
    count, seer, lru, ratio, failure = row
    return (f"    {label:<22} n={count:<5} seer={seer / MB:7.2f}  "
            f"lru={lru / MB:7.2f}  ratio={ratio:5.2f}  "
            f"failures={failure:6.1%}")


def _effectiveness_section(aggregate: PopulationAggregate, seed: int,
                           resamples: int) -> List[str]:
    disconnections = sum(c.disconnections for c in aggregate.cells)
    failed = sum(c.failed_disconnections for c in aggregate.cells)
    automatic = sum(c.automatic_detections for c in aggregate.cells)
    rates = aggregate.column(lambda c: c.failure_rate)
    low, high = bootstrap_band(rates, band_seed(seed, "failure_rate"),
                               resamples=resamples)
    first_miss = [c.median_first_miss_hours for c in aggregate.cells
                  if c.median_first_miss_hours > 0]
    lines = ["Deployment effectiveness (live replay of each machine's "
             "own schedule)", ""]
    lines.append(f"  disconnections replayed   {disconnections}")
    lines.append(f"  with at least one miss    {failed}")
    lines.append(f"  automatic detections      {automatic}")
    lines.append(f"  per-machine failure rate  {_mean(rates):6.1%}   "
                 f"[{low:6.1%}, {high:6.1%}]")
    if first_miss:
        lines.append(f"  median first miss         "
                     f"{percentile(first_miss, 50.0):.1f} active hours "
                     f"({len(first_miss)} machines with misses)")
    else:
        lines.append("  median first miss         (no misses recorded)")
    return lines


def render_population_report(aggregate: PopulationAggregate,
                             bootstrap_seed: int = 0,
                             resamples: int = 1000) -> str:
    """The full population report, deterministic byte-for-byte."""
    if not aggregate.cells:
        return "Population report: (no machines)"
    window = aggregate.window_seconds
    period = "daily" if window <= 2 * 86400 else "weekly"
    investigators = sum(1 for c in aggregate.cells if c.uses_investigators)
    zero = sum(1 for c in aggregate.cells if c.n_disconnections == 0)
    header = [
        f"Population report: {aggregate.machines} machines "
        f"(seed {aggregate.population_seed}), {aggregate.days:g} simulated "
        f"days, {period} windows",
        f"  investigators on {investigators} machines; {zero} machines "
        f"never disconnect",
    ]
    sections = [
        header,
        _headline_section(aggregate, bootstrap_seed, resamples),
        _percentile_section(aggregate),
        _curve_section(aggregate),
        _strata_section(aggregate),
        _effectiveness_section(aggregate, bootstrap_seed, resamples),
    ]
    return "\n\n".join("\n".join(section) for section in sections)
