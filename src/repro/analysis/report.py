"""One-call reproduction report.

:func:`run_reproduction` executes the whole evaluation -- miss-free
simulations (daily/weekly, with investigators where the paper used
them) and live-usage simulations for a chosen set of machines -- and
renders everything into a single text report with Tables 3-5 and
Figures 2-3, plus the headline comparisons.  This is what
``examples/full_reproduction.py`` and downstream users call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.figures import render_figure2, render_figure3
from repro.analysis.tables import (
    render_table1,
    render_table3,
    render_table4,
    render_table5,
)
from repro.simulation.live import LiveResult
from repro.simulation.missfree import MissFreeResult

DAY = 86400.0
WEEK = 7 * DAY
MB = 1024 * 1024


@dataclass
class ReproductionReport:
    """All results of one reproduction run."""

    machines: List[str]
    days: float
    seed: int
    missfree: List[MissFreeResult] = field(default_factory=list)
    live: List[LiveResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    # headline numbers
    # ------------------------------------------------------------------
    def lru_to_seer_ratios(self) -> Dict[str, float]:
        ratios: Dict[str, float] = {}
        for result in self.missfree:
            if result.windows and not result.use_investigators:
                key = f"{result.machine}-" + (
                    "daily" if result.window_seconds <= 2 * DAY else "weekly")
                ratios[key] = result.lru_to_seer_ratio
        return ratios

    def seer_overheads(self) -> Dict[str, float]:
        overheads: Dict[str, float] = {}
        for result in self.missfree:
            if result.windows and not result.use_investigators and \
                    result.mean_working_set:
                key = f"{result.machine}-" + (
                    "daily" if result.window_seconds <= 2 * DAY else "weekly")
                overheads[key] = result.mean_seer / result.mean_working_set
        return overheads

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        ratios = self.lru_to_seer_ratios()
        overheads = self.seer_overheads()
        lines = [
            "SEER reproduction report",
            "=" * 60,
            f"machines: {', '.join(self.machines)}   "
            f"days: {self.days:g}   seed: {self.seed}   "
            f"elapsed: {self.elapsed_seconds:.0f}s",
            "",
            "Headline (paper: SEER slightly above the working set; LRU",
            "worse by factors that can exceed 10:1):",
        ]
        for key in sorted(ratios):
            lines.append(f"  {key:<12} SEER/WS = {overheads.get(key, 0):.2f}x"
                         f"   LRU/SEER = {ratios[key]:.1f}x")
        lines += ["", render_table1(), ""]
        if self.live:
            lines += [render_table3(self.live), "",
                      render_table4(self.live), "",
                      render_table5(self.live), ""]
        if self.missfree:
            lines += [render_figure2(self.missfree, show_ci=False), ""]
            weekly_f = [r for r in self.missfree
                        if r.window_seconds > 2 * DAY and
                        not r.use_investigators]
            if weekly_f:
                busiest = max(weekly_f,
                              key=lambda r: sum(w.referenced_files
                                                for w in r.windows))
                lines += [render_figure3(busiest), ""]
        return "\n".join(lines)


def run_reproduction(machines: Sequence[str] = ("C", "D", "F"),
                     days: float = 28.0, seed: int = 1,
                     include_live: bool = True,
                     include_investigators: bool = True,
                     progress=None, jobs: int = 1,
                     checkpoint_dir: Optional[str] = None,
                     resume: bool = False,
                     metrics=None,
                     fault_profile: Optional[str] = None,
                     fault_seed: int = 0,
                     store: str = "json") -> ReproductionReport:
    """Run the evaluation for *machines* and return the report.

    The (machine x period x simulator) grid runs on the parallel
    experiment runner: *jobs* worker processes, checkpoints under
    *checkpoint_dir* through the *store* backend (``"json"`` per-cell
    files or ``"sqlite"`` single-file WAL, docs/state-store.md), and
    *resume* to restart an interrupted study recomputing only the
    missing cells.  Results are identical for every *jobs* value and
    every backend (see docs/parallel-runner.md).  Outcomes stream into
    the report at join -- with a checkpoint store the runner holds one
    cell in memory at a time, so a fleet-scale grid aggregates in
    O(machines) memory, not O(cells).  *fault_profile*/*fault_seed*
    turn on deterministic fault injection for the live cells
    (docs/fault-injection.md).
    """
    from repro.simulation.runner import reproduction_grid, run_shards
    report = ReproductionReport(machines=list(machines), days=days, seed=seed)
    start = time.perf_counter()
    shards = reproduction_grid(machines, days, seed,
                               include_live=include_live,
                               include_investigators=include_investigators,
                               fault_profile=fault_profile,
                               fault_seed=fault_seed)

    def consume(outcome):
        if outcome.spec.kind == "missfree":
            report.missfree.append(outcome.result)
        elif outcome.spec.kind == "live":
            report.live.append(outcome.result)

    run_shards(shards, jobs=jobs, checkpoint_dir=checkpoint_dir,
               resume=resume, metrics=metrics, progress=progress,
               store=store, consume=consume)
    report.elapsed_seconds = time.perf_counter() - start
    return report
