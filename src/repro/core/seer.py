"""The SEER facade: observer + correlator + clustering + hoard manager.

This is the top-level object a deployment creates.  It attaches to a
simulated kernel's trace stream, digests references continuously, and
on demand (typically just before disconnection, or periodically)
computes clusters and fills the hoard through a replication substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set

from repro.core.clustering import ClusterSet, Relation
from repro.core.correlator import Correlator, ObservedReference
from repro.core.hoard import HoardManager, HoardSelection, MissLog, MissSeverity
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.observer.control_file import ControlConfig
from repro.observer.filters import MeaninglessStrategy
from repro.observer.observer import Observer

if TYPE_CHECKING:   # heavy/cyclic imports used only in annotations
    from repro.investigators.base import Investigator
    from repro.kernel.syscalls import Kernel
    from repro.observability import Metrics
    from repro.replication.base import ReplicationSystem

SizeFunction = Callable[[str], int]


class Seer:
    """A running SEER instance.

    Parameters
    ----------
    kernel:
        The simulated kernel to observe.  SEER registers itself as a
        trace sink; pass ``attach=False`` to drive the observer
        manually (e.g. replaying a saved trace).
    investigators:
        External investigators (section 3.2); each is invoked at
        cluster time and contributes :class:`Relation` groups.
    """

    def __init__(self, kernel: Optional["Kernel"] = None,
                 parameters: SeerParameters = DEFAULT_PARAMETERS,
                 control: Optional[ControlConfig] = None,
                 investigators: Sequence["Investigator"] = (),
                 strategy: MeaninglessStrategy = MeaninglessStrategy.THRESHOLD,
                 seed: int = 0, attach: bool = True) -> None:
        self.parameters = parameters
        self.correlator = Correlator(parameters, seed=seed)
        self.miss_log = MissLog()
        self._kernel = kernel
        self._investigators = list(investigators)
        self._hoard_manager = HoardManager(parameters)
        self.current_hoard: Optional[HoardSelection] = None
        self._disconnected = False
        # Automated periodic hoard filling (section 2): refill every
        # interval of observed trace time, eliminating even the
        # "disconnection imminent" notification.
        self._refill_interval: Optional[float] = None
        self._refill_budget: int = 0
        self._next_refill: Optional[float] = None
        self.refills_performed = 0
        filesystem = kernel.fs if kernel is not None else None
        process_table = kernel.processes if kernel is not None else None
        self.observer = Observer(
            handler=self._handle_reference, control=control,
            parameters=parameters, filesystem=filesystem, strategy=strategy,
            on_failed_access=self._failed_access, process_table=process_table)
        if kernel is not None and attach:
            kernel.add_sink(self.observer.handle_record)

    # ------------------------------------------------------------------
    # reference handling and periodic refill (section 2)
    # ------------------------------------------------------------------
    def _handle_reference(self, reference: ObservedReference) -> None:
        self.correlator.handle(reference)
        if self._refill_interval is None or self._disconnected:
            return
        if self._next_refill is None:
            # First observed reference starts the refill clock.
            self._next_refill = reference.time + self._refill_interval
            return
        if reference.time >= self._next_refill:
            self._next_refill = reference.time + self._refill_interval
            self.build_hoard(self._refill_budget)
            self.refills_performed += 1

    def enable_periodic_refill(self, interval_seconds: float,
                               budget: int) -> None:
        """Refill the hoard every *interval_seconds* of observed time,
        so the user never needs to announce a disconnection."""
        if interval_seconds <= 0:
            raise ValueError("refill interval must be positive")
        self._refill_interval = interval_seconds
        self._refill_budget = budget

    def disable_periodic_refill(self) -> None:
        self._refill_interval = None

    # ------------------------------------------------------------------
    # connectivity state (for automatic miss detection, section 4.4)
    # ------------------------------------------------------------------
    def disconnect(self) -> None:
        self._disconnected = True

    def reconnect(self) -> None:
        self._disconnected = False

    @property
    def disconnected(self) -> bool:
        return self._disconnected

    def _failed_access(self, path: str, time: float) -> None:
        """A failed access while disconnected to a file SEER knows to
        exist but did not hoard is an automatically detected miss."""
        if not self._disconnected or self.current_hoard is None:
            return
        if path in self.current_hoard:
            return
        if path in self.correlator.known_files():
            self.miss_log.record_automatic(path, time)

    def record_manual_miss(self, path: str, time: float,
                           severity: MissSeverity) -> None:
        """The user-run miss-recording program (section 4.4)."""
        self.miss_log.record_manual(path, time, severity)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> "Metrics":
        """The shared :class:`repro.observability.Metrics` of the
        ingestion pipeline (references/sec, prune and eviction counts,
        cluster-build latency)."""
        return self.correlator.metrics

    def metrics_report(self) -> str:
        """Render the pipeline counters for operators (CLI ``--metrics``)."""
        return self.correlator.metrics.render()

    # ------------------------------------------------------------------
    # clustering and hoarding
    # ------------------------------------------------------------------
    def investigate(self) -> List[Relation]:
        """Run all external investigators, collecting their relations."""
        relations: List[Relation] = []
        for investigator in self._investigators:
            relations.extend(investigator.investigate())
        return relations

    def build_clusters(self, use_directory_distance: bool = True) -> ClusterSet:
        # Frequently-referenced files are eliminated from relationship
        # calculation (section 4.2); they are hoarded unconditionally.
        return self.correlator.build_clusters(
            relations=self.investigate(),
            use_directory_distance=use_directory_distance,
            exclude=self.observer.frequent.frequent_files())

    def always_hoard_paths(self) -> Set[str]:
        paths = set(self.observer.always_hoard_paths())
        # Files whose misses were recorded are hoarded at reconnection.
        paths |= self.miss_log.paths_to_hoard()
        return paths

    def size_function(self, fallback: Optional[SizeFunction] = None) -> SizeFunction:
        """Size lookup backed by the kernel filesystem, with *fallback*
        for files no longer present (section 5.1.2's random sizes)."""
        filesystem = self._kernel.fs if self._kernel is not None else None

        def sizes(path: str) -> int:
            if filesystem is not None:
                try:
                    node = filesystem.stat(path, follow_symlinks=False)
                except Exception:
                    node = None
                if node is not None:
                    return 0 if node.kind.takes_no_space else node.size
            return fallback(path) if fallback is not None else 0

        return sizes

    def build_hoard(self, budget: int,
                    sizes: Optional[SizeFunction] = None,
                    clusters: Optional[ClusterSet] = None) -> HoardSelection:
        """Choose new hoard contents within *budget* bytes (section 2)."""
        if clusters is None:
            clusters = self.build_clusters()
        if sizes is None:
            sizes = self.size_function()
        selection = self._hoard_manager.build(
            clusters, sizes, self.correlator.recency(), budget,
            always_hoard=self.always_hoard_paths())
        self.current_hoard = selection
        return selection

    def fill_replica(self, replication: "ReplicationSystem",
                     budget: int) -> HoardSelection:
        """Build a hoard and hand it to a replication substrate."""
        selection = self.build_hoard(budget)
        replication.set_hoard(selection.files)
        return selection
