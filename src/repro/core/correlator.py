"""The correlator: from observed references to file relationships.

The observer feeds classified, absolutized references here.  The
correlator (paper section 2) maintains:

* one lifetime-distance stream per process, inherited at fork and
  merged back at exit (section 4.7);
* the bounded per-file neighbor tables (section 3.1.3);
* non-open reference semantics -- exec/exit as open/close, attribute
  examinations as point references with the examine-then-open elision,
  deletions delayed by a count of total deletions, renames carrying
  identity (section 4.8);
* recency bookkeeping used by hoard ranking and by the LRU baseline.

The distance/neighbor state lives behind a narrow *engine* interface
with two implementations selected by ``SeerParameters.columnar_ingest``:

* :class:`_ReferenceEngine` (here): one
  :class:`LifetimeDistanceCalculator` per process feeding a
  :class:`NeighborStore` of per-entry ``DistanceSummary`` objects --
  the straightforward transcription of the paper, kept as the oracle;
* :class:`~repro.core.arena.ColumnarEngine`: the fused hot path over
  the interned :class:`~repro.core.arena.NeighborArena`.

Both must produce byte-identical state for any event stream; the
differential property suite in ``tests/core/test_equivalence.py``
enforces it.  Event sequencing, recency, delayed deletion and cluster
building are engine-agnostic and implemented once, here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.arena import ArenaStore, ColumnarEngine, NeighborArena
from repro.core.clustering import ClusterSet, Relation, SharedNeighborClustering
from repro.core.distance import LifetimeDistanceCalculator
from repro.core.neighbors import NeighborStore
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.core.recluster import IncrementalClusterer
from repro.fs.paths import directory_distance
from repro.observability import Metrics

#: Both store implementations expose the same path-level API; consumers
#: (persistence, hoarding, extensions) treat them interchangeably.
StoreLike = Union[NeighborStore, ArenaStore]


class Action(enum.Enum):
    """Classified reference kinds the observer emits."""

    OPEN = "open"
    CLOSE = "close"
    POINT = "point"   # an open immediately followed by a close
    STAT = "stat"     # attribute examination: deferred point reference
    EXEC = "exec"     # program image opened for the process lifetime
    EXIT = "exit"
    DELETE = "delete"
    RENAME = "rename"
    FORK = "fork"


@dataclass(frozen=True)
class ObservedReference:
    """One classified reference delivered by the observer."""

    seq: int
    time: float
    pid: int
    action: Action
    path: str = ""
    path2: str = ""
    ppid: int = 0


@dataclass
class _ProcessStream:
    """Per-process reference metadata (section 4.7).

    The distance state itself lives in the engine, keyed by pid; this
    record carries only the sequencing facts the correlator needs to
    drive it (fork lineage, the open exec image, a deferred stat).
    """

    pid: int
    ppid: int
    fork_base: int = 0            # engine open counter at fork time
    exec_image: Optional[str] = None
    pending_stat: Optional[str] = None
    pending_stat_time: float = 0.0   # observed time of the pending stat
    created_by_fork: bool = False    # stream began with a FORK record


@dataclass
class _PendingDeletion:
    path: str
    deletion_number: int


class _ReferenceEngine:
    """The oracle ingest engine: per-pid calculators over a NeighborStore.

    Distances are materialized as ``(from, to, distance)`` tuples and
    re-dispatched through ``NeighborStore.observe`` one at a time --
    exactly the paper's formulation, at per-entry object cost.  The
    columnar engine must match this path's state bit for bit.
    """

    def __init__(self, store: NeighborStore, parameters: SeerParameters,
                 metrics: Metrics) -> None:
        self._store = store
        self._parameters = parameters
        self._metrics = metrics
        self._calculators: Dict[int, LifetimeDistanceCalculator] = {}

    def _new_calculator(self) -> LifetimeDistanceCalculator:
        return LifetimeDistanceCalculator(
            lookback_window=self._parameters.lookback_window,
            prune=self._parameters.prune_lookback,
            compensate=self._parameters.emit_compensation,
            metrics=self._metrics)

    def _calculator(self, pid: int) -> LifetimeDistanceCalculator:
        calculator = self._calculators.get(pid)
        if calculator is None:
            calculator = self._calculators[pid] = self._new_calculator()
        return calculator

    def ensure(self, pid: int) -> None:
        self._calculator(pid)

    def fork(self, pid: int, ppid: int) -> int:
        if ppid:
            calculator = self._calculator(ppid).clone()
        else:
            calculator = self._new_calculator()
        self._calculators[pid] = calculator
        return calculator.opens_processed

    def exit(self, pid: int, merge_ppid: int, since: int) -> None:
        calculator = self._calculators.pop(pid, None)
        if calculator is None or not merge_ppid:
            return
        parent = self._calculators.get(merge_ppid)
        if parent is not None:
            parent.merge_from(calculator, since=since)

    def open(self, pid: int, path: str, now: int) -> None:
        self._ingest(self._calculator(pid).open(path), now)

    def point(self, pid: int, path: str, now: int) -> None:
        self._ingest(self._calculator(pid).point_reference(path), now)

    def close(self, pid: int, path: str) -> None:
        self._calculator(pid).close(path)

    def rename(self, old: str, new: str) -> None:
        for calculator in self._calculators.values():
            calculator.rename(old, new)

    def forget(self, path: str) -> None:
        for calculator in self._calculators.values():
            calculator.forget(path)

    def _ingest(self, distances: List[Tuple[str, str, int]], now: int) -> None:
        if distances:
            self._metrics.incr("correlator.distances_ingested", len(distances))
        for from_file, to_file, distance in distances:
            self._store.observe(from_file, to_file, float(distance), now=now)


class Correlator:
    """Consumes :class:`ObservedReference` events, maintains relationships."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 seed: int = 0, metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self.metrics = metrics if metrics is not None else Metrics()
        self.store: StoreLike
        self._engine: Union[_ReferenceEngine, ColumnarEngine]
        if parameters.columnar_ingest:
            arena = NeighborArena(parameters, metrics=self.metrics)
            self.store = ArenaStore(arena)
            self._engine = ColumnarEngine(arena, parameters,
                                          metrics=self.metrics)
        else:
            self.store = NeighborStore(parameters, seed=seed,
                                       metrics=self.metrics)
            self._engine = _ReferenceEngine(self.store, parameters,
                                            self.metrics)
        self._clusterer = IncrementalClusterer(parameters, self.metrics)
        self._prev_exclude: FrozenSet[str] = frozenset()
        self._streams: Dict[int, _ProcessStream] = {}
        self._recency: Dict[str, int] = {}
        self._recency_time: Dict[str, float] = {}
        self._reference_counter = 0
        self._deletion_counter = 0
        self._pending_deletions: List[_PendingDeletion] = []
        self.references_processed = 0

    # ------------------------------------------------------------------
    # public read API
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> SeerParameters:
        return self._parameters

    def known_files(self) -> Set[str]:
        """Files with relationship state or recorded recency."""
        return set(self._recency) | set(self.store.files())

    def recency(self) -> Dict[str, int]:
        """Last reference sequence number per file (larger = newer)."""
        return dict(self._recency)

    def recency_times(self) -> Dict[str, float]:
        """Last reference wall-clock time per file."""
        return dict(self._recency_time)

    def last_reference(self, path: str) -> Optional[int]:
        return self._recency.get(path)

    def build_clusters(self, relations: Sequence[Relation] = (),
                       use_directory_distance: bool = True,
                       exclude: Optional[Set[str]] = None) -> ClusterSet:
        """Run the clustering algorithm over the current neighbor tables.

        *exclude* removes files (typically the frequently-referenced
        set of section 4.2) from every neighbor list before clustering,
        so a shared library cannot act as a bridge that merges all
        projects into one giant cluster.

        With ``parameters.incremental_recluster`` (and no stale-link
        cutoff, whose effective neighbor sets shift with every
        reference), builds after the first splice in only the
        neighborhoods dirtied since the previous build instead of
        re-running Jarvis-Patrick over the whole population -- O(dirty)
        between hoard walks, with byte-identical output (see
        :mod:`repro.core.recluster` for the replay argument).
        """
        with self.metrics.timed("correlator.cluster_build"):
            distance_fn = directory_distance if use_directory_distance else None
            if self._parameters.stale_link_cutoff > 0:
                neighbor_lists = self.store.neighbor_lists(
                    now=self._reference_counter,
                    stale_after=self._parameters.stale_link_cutoff)
            else:
                neighbor_lists = self.store.neighbor_lists()
            if exclude:
                neighbor_lists = {
                    file: neighbors - exclude
                    for file, neighbors in neighbor_lists.items()
                    if file not in exclude}
            if (self._parameters.incremental_recluster
                    and self._parameters.stale_link_cutoff == 0):
                dirty = self.store.drain_dirty()
                exclude_set = frozenset(exclude) if exclude else frozenset()
                if exclude_set != self._prev_exclude:
                    # Exclusion changes rewrite filtered lists without
                    # touching the store: fold the delta into the dirty
                    # set so the splice reprocesses affected files.  A
                    # toggled file's neighbors are affected too -- their
                    # very membership in the clustering universe can
                    # hinge on the toggled file's list being visible.
                    for file in exclude_set ^ self._prev_exclude:
                        dirty.add(file)
                        dirty |= self.store.containing(file)
                        dirty |= self.store.neighbor_set(file)
                    self._prev_exclude = exclude_set
                return self._clusterer.build(
                    neighbor_lists, dirty,
                    parameters=self._parameters, relations=relations,
                    directory_distance=distance_fn,
                    owners_of=self.store.containing)
            self.store.drain_dirty()   # keep the dirty set bounded
            algorithm = SharedNeighborClustering(
                neighbor_lists, parameters=self._parameters,
                relations=relations, directory_distance=distance_fn)
            return algorithm.cluster()

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def handle(self, reference: ObservedReference) -> None:
        """Process one observed reference."""
        self.references_processed += 1
        self.metrics.mark("correlator.ingest")
        action = reference.action
        stream = self._stream_for(reference.pid)

        if action is Action.FORK:
            self._handle_fork(reference)
            return
        if action is not Action.OPEN:
            self._flush_pending_stat(stream)

        if action is Action.OPEN:
            self._maybe_elide_stat(stream, reference.path)
            self._engine.open(stream.pid, reference.path,
                              self._reference_counter)
            self._touch(reference.path, reference.time)
        elif action is Action.CLOSE:
            self._engine.close(stream.pid, reference.path)
        elif action is Action.POINT:
            self._engine.point(stream.pid, reference.path,
                               self._reference_counter)
            self._touch(reference.path, reference.time)
        elif action is Action.STAT:
            # Deferred: discarded if immediately followed by an open of
            # the same file by the same process (section 4.8).
            self._flush_pending_stat(stream)
            stream.pending_stat = reference.path
            stream.pending_stat_time = reference.time
        elif action is Action.EXEC:
            self._handle_exec(stream, reference)
        elif action is Action.EXIT:
            self._handle_exit(stream, reference)
        elif action is Action.DELETE:
            self._handle_delete(stream, reference)
        elif action is Action.RENAME:
            self._handle_rename(stream, reference)

    # ------------------------------------------------------------------
    # per-action logic
    # ------------------------------------------------------------------
    def _stream_for(self, pid: int) -> _ProcessStream:
        stream = self._streams.get(pid)
        if stream is None:
            stream = _ProcessStream(pid=pid, ppid=0)
            self._streams[pid] = stream
            self._engine.ensure(pid)
        return stream

    def _handle_fork(self, reference: ObservedReference) -> None:
        # Touch the parent first: the child inherits its history, and
        # the engine must clone an existing stream, not invent one.
        if reference.ppid:
            self._stream_for(reference.ppid)
        fork_base = self._engine.fork(reference.pid, reference.ppid)
        self._streams[reference.pid] = _ProcessStream(
            pid=reference.pid, ppid=reference.ppid,
            fork_base=fork_base, created_by_fork=True)

    def _maybe_elide_stat(self, stream: _ProcessStream, path: str) -> None:
        if stream.pending_stat == path:
            stream.pending_stat = None        # stat-then-open: discard stat
        else:
            self._flush_pending_stat(stream)

    def _flush_pending_stat(self, stream: _ProcessStream) -> None:
        if stream.pending_stat is not None:
            path = stream.pending_stat
            stream.pending_stat = None
            self._engine.point(stream.pid, path, self._reference_counter)
            # The stat materializes with the wall-clock time at which it
            # was observed, not a zero time that would clobber the
            # file's recency for hoard ranking.
            self._touch(path, stream.pending_stat_time)

    def _handle_exec(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        # Executions are treated as opens lasting until exit (sec. 4.8).
        if stream.exec_image is not None:
            self._engine.close(stream.pid, stream.exec_image)
        self._engine.open(stream.pid, reference.path, self._reference_counter)
        self._touch(reference.path, reference.time)
        stream.exec_image = reference.path

    def _handle_exit(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        if stream.exec_image is not None:
            self._engine.close(stream.pid, stream.exec_image)
            stream.exec_image = None
        # Merge the history back only into the process that actually
        # forked this one.  Streams created on demand carry ppid 0, and
        # merging those into an unrelated pid-0 stream would invent
        # relationships between every orphan process's files.
        merge_ppid = 0
        if (stream.created_by_fork and stream.ppid
                and stream.ppid in self._streams):
            merge_ppid = stream.ppid
        self._engine.exit(stream.pid, merge_ppid, since=stream.fork_base)
        self._streams.pop(stream.pid, None)

    def _handle_delete(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        # The deletion itself is a semantically meaningful reference.
        self._engine.point(stream.pid, reference.path,
                           self._reference_counter)
        self._touch(reference.path, reference.time)
        # Removal from internal tables is delayed, measured in total
        # deletions, so a delete-recreate cycle keeps its history.
        self._deletion_counter += 1
        self.store.marked_for_deletion.add(reference.path)
        self._pending_deletions.append(_PendingDeletion(
            path=reference.path, deletion_number=self._deletion_counter))
        self._expire_deletions()

    def _handle_rename(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        old, new = reference.path, reference.path2
        # Carry identity first -- in the neighbor store and in every
        # process stream -- so the reference below lands on the new
        # name and no stale entry for the old name (often a /tmp file)
        # lingers to pollute later distances.
        self.store.rename_file(old, new)
        self._engine.rename(old, new)
        if old in self._recency:
            self._recency[new] = self._recency.pop(old)
            self._recency_time[new] = self._recency_time.pop(old, reference.time)
        self._engine.point(stream.pid, new, self._reference_counter)
        self._touch(new, reference.time)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _touch(self, path: str, time: float) -> None:
        self._reference_counter += 1
        self._recency[path] = self._reference_counter
        self._recency_time[path] = time
        if path in self.store.marked_for_deletion:
            # Re-referenced before expiry: the name was reused, keep it.
            self.store.marked_for_deletion.discard(path)
            self._pending_deletions = [
                pending for pending in self._pending_deletions
                if pending.path != path]

    def _expire_deletions(self) -> None:
        threshold = self._deletion_counter - self._parameters.delete_delay
        keep: List[_PendingDeletion] = []
        for pending in self._pending_deletions:
            if pending.deletion_number <= threshold:
                if pending.path in self.store.marked_for_deletion:
                    self.metrics.incr("correlator.deletions_expired")
                    self.store.remove_file(pending.path)
                    self._recency.pop(pending.path, None)
                    self._recency_time.pop(pending.path, None)
                    # Purge per-process histories too, or a later open
                    # would resurrect distances to the dead file.
                    self._engine.forget(pending.path)
            else:
                keep.append(pending)
        self._pending_deletions = keep
