"""The correlator: from observed references to file relationships.

The observer feeds classified, absolutized references here.  The
correlator (paper section 2) maintains:

* one lifetime-distance calculator per process, inherited at fork and
  merged back at exit (section 4.7);
* the bounded per-file neighbor tables (section 3.1.3);
* non-open reference semantics -- exec/exit as open/close, attribute
  examinations as point references with the examine-then-open elision,
  deletions delayed by a count of total deletions, renames carrying
  identity (section 4.8);
* recency bookkeeping used by hoard ranking and by the LRU baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import ClusterSet, Relation, SharedNeighborClustering
from repro.core.distance import LifetimeDistanceCalculator
from repro.core.neighbors import NeighborStore
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.fs.paths import directory_distance
from repro.observability import Metrics


class Action(enum.Enum):
    """Classified reference kinds the observer emits."""

    OPEN = "open"
    CLOSE = "close"
    POINT = "point"   # an open immediately followed by a close
    STAT = "stat"     # attribute examination: deferred point reference
    EXEC = "exec"     # program image opened for the process lifetime
    EXIT = "exit"
    DELETE = "delete"
    RENAME = "rename"
    FORK = "fork"


@dataclass(frozen=True)
class ObservedReference:
    """One classified reference delivered by the observer."""

    seq: int
    time: float
    pid: int
    action: Action
    path: str = ""
    path2: str = ""
    ppid: int = 0


@dataclass
class _ProcessStream:
    """Per-process reference history (section 4.7)."""

    pid: int
    ppid: int
    calculator: LifetimeDistanceCalculator
    fork_base: int = 0            # calculator counter at fork time
    exec_image: Optional[str] = None
    pending_stat: Optional[str] = None
    pending_stat_time: float = 0.0   # observed time of the pending stat
    created_by_fork: bool = False    # stream began with a FORK record


@dataclass
class _PendingDeletion:
    path: str
    deletion_number: int


class Correlator:
    """Consumes :class:`ObservedReference` events, maintains relationships."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 seed: int = 0, metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self.metrics = metrics if metrics is not None else Metrics()
        self.store = NeighborStore(parameters, seed=seed, metrics=self.metrics)
        self._streams: Dict[int, _ProcessStream] = {}
        self._recency: Dict[str, int] = {}
        self._recency_time: Dict[str, float] = {}
        self._reference_counter = 0
        self._deletion_counter = 0
        self._pending_deletions: List[_PendingDeletion] = []
        self.references_processed = 0

    # ------------------------------------------------------------------
    # public read API
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> SeerParameters:
        return self._parameters

    def known_files(self) -> Set[str]:
        """Files with relationship state or recorded recency."""
        return set(self._recency) | set(self.store.files())

    def recency(self) -> Dict[str, int]:
        """Last reference sequence number per file (larger = newer)."""
        return dict(self._recency)

    def recency_times(self) -> Dict[str, float]:
        """Last reference wall-clock time per file."""
        return dict(self._recency_time)

    def last_reference(self, path: str) -> Optional[int]:
        return self._recency.get(path)

    def build_clusters(self, relations: Sequence[Relation] = (),
                       use_directory_distance: bool = True,
                       exclude: Optional[Set[str]] = None) -> ClusterSet:
        """Run the clustering algorithm over the current neighbor tables.

        *exclude* removes files (typically the frequently-referenced
        set of section 4.2) from every neighbor list before clustering,
        so a shared library cannot act as a bridge that merges all
        projects into one giant cluster.
        """
        with self.metrics.timed("correlator.cluster_build"):
            distance_fn = directory_distance if use_directory_distance else None
            if self._parameters.stale_link_cutoff > 0:
                neighbor_lists = self.store.neighbor_lists(
                    now=self._reference_counter,
                    stale_after=self._parameters.stale_link_cutoff)
            else:
                neighbor_lists = self.store.neighbor_lists()
            if exclude:
                neighbor_lists = {
                    file: neighbors - exclude
                    for file, neighbors in neighbor_lists.items()
                    if file not in exclude}
            algorithm = SharedNeighborClustering(
                neighbor_lists, parameters=self._parameters,
                relations=relations, directory_distance=distance_fn)
            return algorithm.cluster()

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def handle(self, reference: ObservedReference) -> None:
        """Process one observed reference."""
        self.references_processed += 1
        self.metrics.mark("correlator.ingest")
        action = reference.action
        stream = self._stream_for(reference.pid)

        if action is Action.FORK:
            self._handle_fork(reference)
            return
        if action is not Action.OPEN:
            self._flush_pending_stat(stream)

        if action is Action.OPEN:
            self._maybe_elide_stat(stream, reference.path)
            self._record_open(stream, reference)
        elif action is Action.CLOSE:
            stream.calculator.close(reference.path)
        elif action is Action.POINT:
            self._record_point(stream, reference)
        elif action is Action.STAT:
            # Deferred: discarded if immediately followed by an open of
            # the same file by the same process (section 4.8).
            self._flush_pending_stat(stream)
            stream.pending_stat = reference.path
            stream.pending_stat_time = reference.time
        elif action is Action.EXEC:
            self._handle_exec(stream, reference)
        elif action is Action.EXIT:
            self._handle_exit(stream, reference)
        elif action is Action.DELETE:
            self._handle_delete(stream, reference)
        elif action is Action.RENAME:
            self._handle_rename(stream, reference)

    # ------------------------------------------------------------------
    # per-action logic
    # ------------------------------------------------------------------
    def _new_calculator(self) -> LifetimeDistanceCalculator:
        return LifetimeDistanceCalculator(
            lookback_window=self._parameters.lookback_window,
            prune=self._parameters.prune_lookback,
            compensate=self._parameters.emit_compensation,
            metrics=self.metrics)

    def _stream_for(self, pid: int) -> _ProcessStream:
        stream = self._streams.get(pid)
        if stream is None:
            stream = _ProcessStream(
                pid=pid, ppid=0, calculator=self._new_calculator())
            self._streams[pid] = stream
        return stream

    def _handle_fork(self, reference: ObservedReference) -> None:
        parent = self._stream_for(reference.ppid) if reference.ppid else None
        if parent is not None:
            calculator = parent.calculator.clone()
        else:
            calculator = self._new_calculator()
        self._streams[reference.pid] = _ProcessStream(
            pid=reference.pid, ppid=reference.ppid, calculator=calculator,
            fork_base=calculator.opens_processed, created_by_fork=True)

    def _maybe_elide_stat(self, stream: _ProcessStream, path: str) -> None:
        if stream.pending_stat == path:
            stream.pending_stat = None        # stat-then-open: discard stat
        else:
            self._flush_pending_stat(stream)

    def _flush_pending_stat(self, stream: _ProcessStream) -> None:
        if stream.pending_stat is not None:
            path = stream.pending_stat
            stream.pending_stat = None
            self._ingest_distances(stream.calculator.point_reference(path))
            # The stat materializes with the wall-clock time at which it
            # was observed, not a zero time that would clobber the
            # file's recency for hoard ranking.
            self._touch(path, stream.pending_stat_time)

    def _record_open(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        self._ingest_distances(stream.calculator.open(reference.path))
        self._touch(reference.path, reference.time)

    def _record_point(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        self._ingest_distances(stream.calculator.point_reference(reference.path))
        self._touch(reference.path, reference.time)

    def _handle_exec(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        # Executions are treated as opens lasting until exit (sec. 4.8).
        if stream.exec_image is not None:
            stream.calculator.close(stream.exec_image)
        self._ingest_distances(stream.calculator.open(reference.path))
        self._touch(reference.path, reference.time)
        stream.exec_image = reference.path

    def _handle_exit(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        if stream.exec_image is not None:
            stream.calculator.close(stream.exec_image)
            stream.exec_image = None
        # Merge the history back only into the process that actually
        # forked this one.  Streams created on demand carry ppid 0, and
        # merging those into an unrelated pid-0 stream would invent
        # relationships between every orphan process's files.
        if stream.created_by_fork and stream.ppid:
            parent = self._streams.get(stream.ppid)
            if parent is not None:
                parent.calculator.merge_from(stream.calculator,
                                             since=stream.fork_base)
        self._streams.pop(stream.pid, None)

    def _handle_delete(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        # The deletion itself is a semantically meaningful reference.
        self._ingest_distances(stream.calculator.point_reference(reference.path))
        self._touch(reference.path, reference.time)
        # Removal from internal tables is delayed, measured in total
        # deletions, so a delete-recreate cycle keeps its history.
        self._deletion_counter += 1
        self.store.marked_for_deletion.add(reference.path)
        self._pending_deletions.append(_PendingDeletion(
            path=reference.path, deletion_number=self._deletion_counter))
        self._expire_deletions()

    def _handle_rename(self, stream: _ProcessStream, reference: ObservedReference) -> None:
        old, new = reference.path, reference.path2
        # Carry identity first -- in the neighbor store and in every
        # process stream -- so the reference below lands on the new
        # name and no stale entry for the old name (often a /tmp file)
        # lingers to pollute later distances.
        self.store.rename_file(old, new)
        for other_stream in self._streams.values():
            other_stream.calculator.rename(old, new)
        if old in self._recency:
            self._recency[new] = self._recency.pop(old)
            self._recency_time[new] = self._recency_time.pop(old, reference.time)
        self._ingest_distances(stream.calculator.point_reference(new))
        self._touch(new, reference.time)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _touch(self, path: str, time: float) -> None:
        self._reference_counter += 1
        self._recency[path] = self._reference_counter
        self._recency_time[path] = time
        if path in self.store.marked_for_deletion:
            # Re-referenced before expiry: the name was reused, keep it.
            self.store.marked_for_deletion.discard(path)
            self._pending_deletions = [
                pending for pending in self._pending_deletions
                if pending.path != path]

    def _ingest_distances(self, distances: List[Tuple[str, str, int]]) -> None:
        if distances:
            self.metrics.incr("correlator.distances_ingested", len(distances))
        for from_file, to_file, distance in distances:
            self.store.observe(from_file, to_file, float(distance),
                               now=self._reference_counter)

    def _expire_deletions(self) -> None:
        threshold = self._deletion_counter - self._parameters.delete_delay
        keep: List[_PendingDeletion] = []
        for pending in self._pending_deletions:
            if pending.deletion_number <= threshold:
                if pending.path in self.store.marked_for_deletion:
                    self.metrics.incr("correlator.deletions_expired")
                    self.store.remove_file(pending.path)
                    self._recency.pop(pending.path, None)
                    self._recency_time.pop(pending.path, None)
                    # Purge per-process histories too, or a later open
                    # would resurrect distances to the dead file.
                    for stream in self._streams.values():
                        stream.calculator.forget(pending.path)
            else:
                keep.append(pending)
        self._pending_deletions = keep
