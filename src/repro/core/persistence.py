"""Persistence of SEER's internal database.

Section 5.3: the database of known files (about 1 KB per tracked file)
was kept in virtual memory, and the authors note "it would be
relatively simple to modify the system to store the database on disk
... since only a small fraction of the information is active at any
given time."  This module provides that: the correlator's neighbor
tables, recency state and counters serialize to a JSON document, so a
deployment survives restarts without relearning months of behaviour.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.core.correlator import Correlator
from repro.core.distance import DistanceSummary
from repro.core.parameters import SeerParameters

FORMAT_VERSION = 1


def dump_correlator(correlator: Correlator) -> Dict:
    """Serialize the persistent parts of *correlator* to plain data.

    Per-process streams are deliberately not saved: processes do not
    survive a reboot, which is exactly when state gets reloaded.
    """
    tables = {}
    for file in correlator.store.files():
        table = correlator.store.get(file)
        assert table is not None
        tables[file] = {
            neighbor: {
                "count": entry.count,
                "log_sum": entry.log_sum,
                "linear_sum": entry.linear_sum,
                "last_update": entry.last_update,
            }
            for neighbor, entry in table.entries()
        }
    return {
        "format": FORMAT_VERSION,
        "references_processed": correlator.references_processed,
        "reference_counter": correlator._reference_counter,
        "deletion_counter": correlator._deletion_counter,
        "recency": correlator.recency(),
        "recency_times": correlator.recency_times(),
        "marked_for_deletion": sorted(correlator.store.marked_for_deletion),
        "tables": tables,
    }


def load_correlator(data: Dict,
                    parameters: SeerParameters = None,
                    seed: int = 0) -> Correlator:
    """Reconstruct a correlator from :func:`dump_correlator` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported database format: {data.get('format')!r}")
    if parameters is None:
        from repro.core.parameters import DEFAULT_PARAMETERS
        parameters = DEFAULT_PARAMETERS
    correlator = Correlator(parameters, seed=seed)
    correlator.references_processed = data["references_processed"]
    correlator._reference_counter = data["reference_counter"]
    correlator._deletion_counter = data["deletion_counter"]
    correlator._recency = dict(data["recency"])
    correlator._recency_time = dict(data["recency_times"])
    marked = correlator.store.marked_for_deletion
    for path in data["marked_for_deletion"]:
        marked.add(path)
    for file, entries in data["tables"].items():
        table = correlator.store.table(file)
        for neighbor, fields in entries.items():
            summary = DistanceSummary(
                count=fields["count"], log_sum=fields["log_sum"],
                linear_sum=fields["linear_sum"],
                last_update=fields["last_update"])
            # Goes through the loading API so the store's reverse index
            # and the table's worst-entry bound stay consistent.
            table.load_entry(neighbor, summary)
    return correlator


def save_database(correlator: Correlator, path: str) -> None:
    """Write the correlator's database to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(dump_correlator(correlator), stream)


def load_database(path: str, parameters: SeerParameters = None,
                  seed: int = 0) -> Correlator:
    """Load a correlator database saved by :func:`save_database`."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_correlator(json.load(stream), parameters, seed=seed)
