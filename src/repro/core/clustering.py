"""Shared-neighbor clustering (paper sections 3.3.2 and 3.3.3).

A variation of the Jarvis-Patrick agglomerative algorithm.  The
original computes each point's n nearest neighbors (O(N^2)); SEER
reuses the neighbor tables already maintained by the semantic-distance
heuristic, giving O(N) time.  Two thresholds are used (Table 1):

====================  =============================================
relationship          action
====================  =============================================
kn <= x               clusters combined into one
kf <= x < kn          files inserted into each other's clusters,
                      but the clusters are not combined
x < kf                no action
====================  =============================================

where x is the number of shared neighbors, kn > kf ("near" exceeds
"far" because smaller thresholds are more lenient).

Additional information (section 3.3.3) -- directory distance and
external-investigator relations -- adjusts the shared-neighbor count
directly rather than the semantic distance: directory distance is
subtracted, investigator strength added.  Investigated relationships
are tested even for pairs with no stored semantic distance, so a
sufficiently strong relation can force files into one cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Set, Tuple)

from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters

if TYPE_CHECKING:   # import cycle: neighbors imports clustering
    from repro.core.neighbors import NeighborStore


@dataclass(frozen=True)
class Relation:
    """An external-investigator relation: a group of related files with
    an investigator-chosen strength (section 3.2)."""

    files: Tuple[str, ...]
    strength: float = 1.0
    source: str = "investigator"

    def __post_init__(self) -> None:
        if len(self.files) < 2:
            raise ValueError("a relation needs at least two files")
        if self.strength < 0:
            raise ValueError("relation strength must be non-negative")


class ClusterSet:
    """The result of clustering: possibly overlapping groups of files."""

    def __init__(self) -> None:
        self._clusters: Dict[int, Set[str]] = {}
        self._membership: Dict[str, Set[int]] = {}
        self._next_id = 0

    def new_cluster(self, members: Iterable[str]) -> int:
        cluster_id = self._next_id
        self._next_id += 1
        self._clusters[cluster_id] = set()
        for member in members:
            self.add_member(cluster_id, member)
        return cluster_id

    def add_member(self, cluster_id: int, file: str) -> None:
        self._clusters[cluster_id].add(file)
        self._membership.setdefault(file, set()).add(cluster_id)

    def clusters_of(self, file: str) -> Set[int]:
        return set(self._membership.get(file, set()))

    def members(self, cluster_id: int) -> Set[str]:
        return set(self._clusters[cluster_id])

    def cluster_ids(self) -> List[int]:
        return list(self._clusters)

    def as_sets(self) -> List[FrozenSet[str]]:
        """All clusters as frozensets (convenient for comparisons)."""
        return [frozenset(members) for members in self._clusters.values()]

    def files(self) -> Set[str]:
        return set(self._membership)

    def deduplicate(self) -> Dict[int, int]:
        """Drop clusters whose member sets duplicate an earlier one.

        Mutual phase-2 overlap of two clusters can leave them with
        identical contents; one copy carries all the information.
        Returns the applied id remapping (dropped id -> surviving id).

        Membership redirection follows remap *chains*: if the cluster
        recorded as a key's survivor has itself been dropped in this
        pass (chained duplicates), members are pointed at its ultimate
        survivor, never at a deleted id -- ``clusters_of`` and
        ``project_of`` results always reference live clusters.
        """
        seen: Dict[FrozenSet[str], int] = {}
        remap: Dict[int, int] = {}
        for cluster_id in sorted(self._clusters):
            key = frozenset(self._clusters[cluster_id])
            survivor = seen.get(key)
            if survivor is None:
                seen[key] = cluster_id
                continue
            while survivor in remap:     # chase chained duplicates
                survivor = remap[survivor]
            remap[cluster_id] = survivor
            for member in self._clusters[cluster_id]:
                self._membership[member].discard(cluster_id)
                self._membership[member].add(survivor)
            del self._clusters[cluster_id]
        return remap

    def same_cluster(self, file_a: str, file_b: str) -> bool:
        """True if the two files share at least one cluster."""
        return bool(self.clusters_of(file_a) & self.clusters_of(file_b))

    def project_of(self, file: str) -> Set[str]:
        """Union of all clusters containing *file* (its 'project')."""
        union: Set[str] = set()
        for cluster_id in self.clusters_of(file):
            union |= self._clusters[cluster_id]
        return union

    def __len__(self) -> int:
        return len(self._clusters)

    def __repr__(self) -> str:
        return f"ClusterSet({len(self._clusters)} clusters, {len(self._membership)} files)"


SharedCountFunction = Callable[[str, str], float]


class SharedNeighborClustering:
    """The modified Jarvis-Patrick algorithm.

    ``neighbor_lists`` maps each file to the set of files in its
    relation list (its bounded neighbor table).  The pair (F, G) is
    *examined* when G appears in F's list -- a blank entry in Table 2's
    sense means the pair is never considered, even if they share
    neighbors.  External relations add examined pairs of their own.
    """

    def __init__(self, neighbor_lists: Dict[str, Set[str]],
                 parameters: SeerParameters = DEFAULT_PARAMETERS,
                 relations: Sequence[Relation] = (),
                 directory_distance: Optional[Callable[[str, str], float]] = None,
                 shared_count_override: Optional[SharedCountFunction] = None) -> None:
        self._neighbors = neighbor_lists
        self._parameters = parameters
        self._relations = list(relations)
        self._directory_distance = directory_distance
        self._override = shared_count_override
        self._relation_strength: Dict[Tuple[str, str], float] = {}
        for relation in self._relations:
            for index, first in enumerate(relation.files):
                for second in relation.files[index + 1:]:
                    for pair in ((first, second), (second, first)):
                        self._relation_strength[pair] = (
                            self._relation_strength.get(pair, 0.0) + relation.strength)

    # ------------------------------------------------------------------
    # shared-neighbor counting
    # ------------------------------------------------------------------
    def raw_shared_count(self, file_a: str, file_b: str) -> int:
        """Shared-neighbor count with no external adjustments.

        As in Jarvis and Patrick's original formulation, each point is
        counted as a member of its own neighbor list, so two files that
        list *each other* get credit for it: the count is
        ``|N(a) & N(b)|`` plus one for each direction of mutual
        listing.  Without this, projects smaller than kn files could
        never cluster.
        """
        neighbors_a = self._neighbors.get(file_a, set())
        neighbors_b = self._neighbors.get(file_b, set())
        count = len(neighbors_a & neighbors_b)
        if file_b in neighbors_a:
            count += 1
        if file_a in neighbors_b:
            count += 1
        return count

    def shared_count(self, file_a: str, file_b: str) -> float:
        """Adjusted shared-neighbor count (section 3.3.3)."""
        if self._override is not None:
            count = self._override(file_a, file_b)
        else:
            count = float(self.raw_shared_count(file_a, file_b))
        strength = self._relation_strength.get((file_a, file_b), 0.0)
        if strength:
            count += self._parameters.investigator_weight * strength
        if self._directory_distance is not None:
            count -= (self._parameters.directory_distance_weight
                      * self._directory_distance(file_a, file_b))
        return count

    def _denominator(self, file_a: str, file_b: str) -> float:
        """Normalization denominator: the smaller relation-list size,
        capped at the table capacity; 1 for pairs known only through
        investigators (so strong relations still dominate)."""
        size_a = len(self._neighbors.get(file_a, ()))
        size_b = len(self._neighbors.get(file_b, ()))
        candidates = [s for s in (size_a, size_b) if s > 0]
        if not candidates:
            return 1.0
        return float(min(min(candidates), self._parameters.max_neighbors))

    def effective_count(self, file_a: str, file_b: str) -> float:
        """The value actually compared against the thresholds."""
        count = self.shared_count(file_a, file_b)
        if self._parameters.normalize_shared_counts:
            return count / self._denominator(file_a, file_b)
        return count

    @property
    def relation_strength(self) -> Dict[Tuple[str, str], float]:
        """Oriented relation-pair strengths (both orientations present).

        Exposed for the incremental reclusterer, which must replay
        relation pairs in exactly this structure's order.
        """
        return self._relation_strength

    def examined_pairs(self) -> List[Tuple[str, str]]:
        """Ordered (from, to) pairs the algorithm will test."""
        pairs: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        for file in sorted(self._neighbors):
            for other in sorted(self._neighbors[file]):
                if other == file:
                    continue
                pair = (file, other)
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        # Investigated relationships are tested regardless of whether a
        # semantic distance is stored (section 3.3.3).
        for first, second in sorted(self._relation_strength):
            if first != second and (first, second) not in seen:
                seen.add((first, second))
                pairs.append((first, second))
        return pairs

    # ------------------------------------------------------------------
    # the two phases
    # ------------------------------------------------------------------
    def cluster(self) -> ClusterSet:
        """Run both phases and return the final overlapping clusters."""
        files: List[str] = sorted(
            set(self._neighbors)
            | {n for ns in self._neighbors.values() for n in ns}
            | {f for pair in self._relation_strength for f in pair})
        parent: Dict[str, str] = {file: file for file in files}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        pairs = self.examined_pairs()
        counts = {pair: self.effective_count(*pair) for pair in pairs}
        if self._parameters.normalize_shared_counts:
            near = self._parameters.kn_fraction
            far = self._parameters.kf_fraction
        else:
            near, far = self._parameters.kn, self._parameters.kf

        # Phase 1: combine clusters for pairs sharing >= kn neighbors.
        for pair in pairs:
            if counts[pair] >= near:
                union(*pair)

        result = ClusterSet()
        groups: Dict[str, List[str]] = {}
        for file in files:
            groups.setdefault(find(file), []).append(file)
        cluster_of_root: Dict[str, int] = {}
        for root, members in sorted(groups.items()):
            cluster_of_root[root] = result.new_cluster(members)

        # Phase 2: overlap (but do not combine) clusters for pairs with
        # kf <= shared < kn.  Additions are computed against the
        # phase-1 membership so processing order cannot matter.
        additions: List[Tuple[int, str]] = []
        for (file, other) in pairs:
            count = counts[(file, other)]
            if far <= count < near:
                if find(file) == find(other):
                    continue  # already in the same cluster
                additions.append((cluster_of_root[find(other)], file))
                additions.append((cluster_of_root[find(file)], other))
        for cluster_id, file in additions:
            result.add_member(cluster_id, file)
        result.deduplicate()
        return result


def cluster_neighbor_store(store: "NeighborStore",
                           parameters: SeerParameters = DEFAULT_PARAMETERS,
                           relations: Sequence[Relation] = (),
                           directory_distance: Optional[
                               Callable[[str, str], float]] = None
                           ) -> ClusterSet:
    """Convenience: cluster directly from a
    :class:`~repro.core.neighbors.NeighborStore`."""
    return SharedNeighborClustering(
        store.neighbor_lists(), parameters=parameters, relations=relations,
        directory_distance=directory_distance).cluster()
