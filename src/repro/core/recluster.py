"""Incremental shared-neighbor reclustering: O(dirty), byte-identical.

Between hoard walks only a small fraction of neighbor lists change, yet
``Correlator.build_clusters`` used to re-run the full Jarvis-Patrick
pass -- every examined pair's set intersection recomputed -- on every
call.  This module reclusters only the *dirtied neighborhoods* while
producing **exactly** the ClusterSet a full pass would: same member
sets, same cluster ids, same internal ordering.  Exactness matters
because hoard ranking breaks priority ties by cluster id
(:func:`repro.core.hoard.rank_clusters`), and because the golden
figure-2 outputs are byte-compared in CI.

Why the splice is exact (the replay argument)
---------------------------------------------

The full pass (:meth:`SharedNeighborClustering.cluster`) is built from
pieces that are all *regional* in character:

* A pair's effective count depends only on the two endpoint neighbor
  sets (plus static relations/directory distance), so a pair's count
  can change only if an endpoint's list changed -- i.e. an endpoint is
  dirty.
* Phase-1 edges (count >= kn) therefore appear or disappear only
  incident to dirty files; connected components not reachable from a
  dirty file are unchanged.
* The union-find root of a component is a pure function of the sorted
  sequence of its internal qualifying pairs: unions never cross
  components, and the global pair scan is lexicographically sorted, so
  replaying a component's pairs in sorted order yields the identical
  root.  Cluster ids are assigned by iterating roots in sorted order
  -- identical roots in, identical ids out.
* Phase-2 qualification (kf <= count < kn, distinct components) of a
  pair with both endpoints outside the recomputed region is untouched:
  its count is unchanged and both endpoint components are unchanged.

So the splice: take the drained dirty set, close it over neighbor
lists, reverse index, relations and previous components into a region;
replay the region's pairs in sorted order; keep every component and
phase-2 pair outside the region from the previous build's bookkeeping;
reassemble.  Any observation that contradicts the invariants above --
a qualifying pair crossing the region boundary, a file with no
recorded component -- falls back to a full rebuild (counted in
``recluster.full_builds``) rather than risking drift.  The
fast==reference equivalence suite and the interleaved-build property
tests in ``tests/core/`` fence the whole construction.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import ClusterSet, Relation, SharedNeighborClustering
from repro.core.parameters import SeerParameters
from repro.observability import Metrics

#: Regions larger than this fraction of the population fall back to a
#: full rebuild: the splice's per-pair savings no longer pay for its
#: bookkeeping, and the full path is the simpler code to trust.
_REGION_FRACTION = 0.5
_REGION_MINIMUM = 64


class _FullRebuild(Exception):
    """Internal: an invariant the splice relies on did not hold."""


class IncrementalClusterer:
    """Maintains clustering bookkeeping across ``build_clusters`` calls.

    State kept between builds (all keyed on the *filtered* neighbor
    lists the correlator clusters over):

    * ``_comp_of``: file -> union-find root of its phase-1 component;
    * ``_components``: root -> members in globally sorted order;
    * ``_phase2``: the oriented pairs that qualified for phase-2
      overlap (kf <= count < kn, distinct components);
    * the relations / directory-distance function / parameters the
      bookkeeping was computed under -- any change forces a full
      rebuild, since counts shift globally.
    """

    def __init__(self, parameters: SeerParameters,
                 metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self._metrics = metrics
        self._comp_of: Dict[str, str] = {}
        self._components: Dict[str, List[str]] = {}
        self._phase2: Set[Tuple[str, str]] = set()
        self._prev_relations: Optional[Tuple[Relation, ...]] = None
        self._prev_distance_fn: Optional[Callable[[str, str], float]] = None
        self._prev_parameters: Optional[SeerParameters] = None

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def build(self, neighbor_lists: Dict[str, Set[str]],
              dirty: Set[str],
              parameters: SeerParameters,
              relations: Sequence[Relation] = (),
              directory_distance: Optional[Callable[[str, str], float]] = None,
              owners_of: Optional[Callable[[str], Set[str]]] = None) -> ClusterSet:
        """Cluster *neighbor_lists*, splicing in only dirty regions.

        *dirty* is the store's drained dirty set (files whose neighbor
        sets changed since the previous build, plus any exclude-set
        deltas the caller folded in).  *owners_of* resolves the reverse
        index (file -> owners whose lists contain it); without it every
        build is full.
        """
        algorithm = SharedNeighborClustering(
            neighbor_lists, parameters=parameters, relations=relations,
            directory_distance=directory_distance)
        relations_tuple = tuple(relations)
        fresh = (self._prev_relations is None
                 or self._prev_relations != relations_tuple
                 or self._prev_distance_fn is not directory_distance
                 or self._prev_parameters != parameters
                 or owners_of is None)
        if not fresh:
            try:
                result = self._splice(algorithm, neighbor_lists, dirty,
                                      parameters, owners_of)
                if self._metrics is not None:
                    self._metrics.incr("recluster.incremental_builds")
                return result
            except _FullRebuild:
                pass
        result = self._full_build(algorithm, neighbor_lists, parameters)
        self._prev_relations = relations_tuple
        self._prev_distance_fn = directory_distance
        self._prev_parameters = parameters
        if self._metrics is not None:
            self._metrics.incr("recluster.full_builds")
        return result

    # ------------------------------------------------------------------
    # shared assembly: bookkeeping -> ClusterSet
    # ------------------------------------------------------------------
    def _assemble(self) -> ClusterSet:
        """Materialize the ClusterSet exactly as the full pass would.

        Cluster ids are assigned by sorted root; members were recorded
        in globally sorted order; phase-2 additions are set-inserts, so
        applying them in sorted-pair order reproduces the full pass's
        content; deduplicate() is deterministic given content and ids.
        """
        result = ClusterSet()
        cluster_of_root: Dict[str, int] = {}
        for root in sorted(self._components):
            cluster_of_root[root] = result.new_cluster(self._components[root])
        comp_of = self._comp_of
        for file, other in sorted(self._phase2):
            result.add_member(cluster_of_root[comp_of[other]], file)
            result.add_member(cluster_of_root[comp_of[file]], other)
        result.deduplicate()
        return result

    # ------------------------------------------------------------------
    # the full pass, with bookkeeping captured
    # ------------------------------------------------------------------
    def _full_build(self, algorithm: SharedNeighborClustering,
                    neighbor_lists: Dict[str, Set[str]],
                    parameters: SeerParameters) -> ClusterSet:
        relation_strength = algorithm.relation_strength
        files: List[str] = sorted(
            set(neighbor_lists)
            | {n for ns in neighbor_lists.values() for n in ns}
            | {f for pair in relation_strength for f in pair})
        parent: Dict[str, str] = {file: file for file in files}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        pairs = algorithm.examined_pairs()
        counts = {pair: algorithm.effective_count(*pair) for pair in pairs}
        near, far = _thresholds(parameters)

        for pair in pairs:
            if counts[pair] >= near:
                root_a, root_b = find(pair[0]), find(pair[1])
                if root_a != root_b:
                    parent[root_b] = root_a

        self._components = {}
        self._comp_of = {}
        for file in files:
            root = find(file)
            self._components.setdefault(root, []).append(file)
            self._comp_of[file] = root

        self._phase2 = set()
        for pair in pairs:
            count = counts[pair]
            if far <= count < near:
                if self._comp_of[pair[0]] != self._comp_of[pair[1]]:
                    self._phase2.add(pair)
        return self._assemble()

    # ------------------------------------------------------------------
    # the incremental splice
    # ------------------------------------------------------------------
    def _splice(self, algorithm: SharedNeighborClustering,
                neighbor_lists: Dict[str, Set[str]],
                dirty: Set[str],
                parameters: SeerParameters,
                owners_of: Callable[[str], Set[str]]) -> ClusterSet:
        if not dirty:
            return self._assemble()
        relation_strength = algorithm.relation_strength
        relation_files: Set[str] = {f for pair in relation_strength
                                    for f in pair}
        relation_partners: Dict[str, Set[str]] = {}
        for first, second in relation_strength:
            relation_partners.setdefault(first, set()).add(second)

        # -- close the dirty set into a region -------------------------
        # A file's pairs involve its list, the lists containing it, and
        # its relation partners; any changed component is reachable
        # through one of those from a dirty file.
        adjacent: Set[str] = set(dirty)
        for file in sorted(dirty):
            adjacent |= neighbor_lists.get(file, set())
            for owner in owners_of(file):
                if file in neighbor_lists.get(owner, ()):
                    adjacent.add(owner)
            adjacent |= relation_partners.get(file, set())
        # Pull in the previous components of everything adjacent: a
        # changed edge can split or merge them, and replay must see
        # each affected component whole.
        region: Set[str] = set(adjacent)
        for file in sorted(adjacent):
            root = self._comp_of.get(file)
            if root is not None:
                region.update(self._components[root])

        limit = max(_REGION_MINIMUM,
                    int(_REGION_FRACTION * len(neighbor_lists)))
        if len(region) > limit:
            raise _FullRebuild
        if self._metrics is not None:
            self._metrics.incr("recluster.region_files", len(region))

        # -- region pair scan, in the full pass's order ----------------
        # Every examined pair with an endpoint in the region, sorted:
        # exactly the subsequence of the full scan that can have
        # changed.  Owner pairs (w, x) with w outside the region keep
        # their counts but may requalify for phase 2 when x's
        # component moved.
        list_pairs: Set[Tuple[str, str]] = set()
        for file in sorted(region):
            for other in neighbor_lists.get(file, ()):
                if other != file:
                    list_pairs.add((file, other))
            for owner in owners_of(file):
                if owner != file and file in neighbor_lists.get(owner, ()):
                    list_pairs.add((owner, file))
        pairs: List[Tuple[str, str]] = sorted(list_pairs)
        for pair in sorted(relation_strength):
            first, second = pair
            if first == second or pair in list_pairs:
                continue
            if first in region or second in region:
                pairs.append(pair)
        counts = {pair: algorithm.effective_count(*pair) for pair in pairs}
        near, far = _thresholds(parameters)

        # -- which region files are still in the clustering universe --
        present: Set[str] = set()
        for file in sorted(region):
            if file in neighbor_lists or file in relation_files:
                present.add(file)
                continue
            for owner in owners_of(file):
                if file in neighbor_lists.get(owner, ()):
                    present.add(file)
                    break

        # -- phase-1 replay over the region ----------------------------
        parent: Dict[str, str] = {file: file for file in sorted(present)}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for pair in pairs:
            if counts[pair] >= near:
                if pair[0] not in parent or pair[1] not in parent:
                    # A qualifying pair crossing the region boundary
                    # contradicts the region closure (its endpoints
                    # shared a component last build and would both be
                    # here).  Don't guess -- rebuild.
                    raise _FullRebuild
                root_a, root_b = find(pair[0]), find(pair[1])
                if root_a != root_b:
                    parent[root_b] = root_a

        # -- splice bookkeeping ----------------------------------------
        # Components touching the region are wholly inside it (by the
        # closure above), so dropping every region file removes exactly
        # the stale components.
        stale_roots = {self._comp_of[file] for file in region
                       if file in self._comp_of}
        for root in sorted(stale_roots):
            for member in self._components.pop(root):
                del self._comp_of[member]
        for file in sorted(present):
            root = find(file)
            self._components.setdefault(root, []).append(file)
            self._comp_of[file] = root

        self._phase2 = {pair for pair in self._phase2
                        if pair[0] not in region and pair[1] not in region}
        comp_of = self._comp_of
        for pair in pairs:
            count = counts[pair]
            if far <= count < near:
                root_a = comp_of.get(pair[0])
                root_b = comp_of.get(pair[1])
                if root_a is None or root_b is None:
                    raise _FullRebuild
                if root_a != root_b:
                    self._phase2.add(pair)
        return self._assemble()


def _thresholds(parameters: SeerParameters) -> Tuple[float, float]:
    if parameters.normalize_shared_counts:
        return parameters.kn_fraction, parameters.kf_fraction
    return float(parameters.kn), float(parameters.kf)
