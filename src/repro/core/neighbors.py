"""Bounded per-file neighbor tables (paper section 3.1.3).

Storing all N^2 pairwise distances is prohibitive, so SEER keeps for
each file only the distances to its n closest neighbors (n = 20).  When
a new distance arrives for a full table, a replacement priority is
applied:

1. highest priority: an entry whose file is marked for deletion;
2. otherwise the entry with the largest current distance is replaced,
   ties broken randomly, but only if it is farther than the candidate;
3. finally, an aging rule lets very old, inactive entries be replaced
   by newer ones so the table can track changes in user behaviour and
   shed incorrectly inferred relationships.

Hot-path discipline: every table maintains an incrementally-updated
*worst-entry bound* -- an upper bound on its largest summarized
distance, refreshed for free from the raw observations.  Replacement
decisions first test the candidate against the bound and only fall
back to an exact scan (over cached means) when the bound says a
replacement might be possible.  The store likewise keeps a reverse
index of which tables contain each file, so renames and removals touch
only the tables actually involved instead of walking every table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.distance import DistanceSummary
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.observability import Metrics


class NeighborTable:
    """The n-nearest-neighbor list of a single file."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 rng: Optional[random.Random] = None,
                 owner: Optional[str] = None,
                 index: Optional[Dict[str, Set[str]]] = None,
                 dirty: Optional[Set[str]] = None,
                 metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self._entries: Dict[str, DistanceSummary] = {}
        self._rng = rng if rng is not None else random.Random(0)
        # Upper bound on the largest summarized distance in the table.
        # Maintained incrementally (means never exceed the largest raw
        # observation); tightened to the exact maximum whenever a
        # replacement decision has to scan anyway.
        self._worst_bound = 0.0
        # Lower bound on the oldest last_update in the table; lets the
        # aging rule skip its scan when nothing can possibly be old
        # enough.  Refreshed to the exact minimum whenever it does scan.
        self._oldest_update = float("inf")
        self._owner = owner
        self._index = index
        # Shared with the owning store: files whose neighbor *set*
        # changed since the incremental reclusterer last drained it.
        # Mean updates to an existing entry do not dirty anything --
        # clustering consumes only the sets.
        self._dirty = dirty
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, neighbor: str) -> bool:
        return neighbor in self._entries

    def neighbors(self) -> Set[str]:
        """The set of neighbor file ids currently tracked."""
        return set(self._entries)

    def summary(self, neighbor: str) -> Optional[DistanceSummary]:
        return self._entries.get(neighbor)

    def distance_to(self, neighbor: str) -> float:
        """Current summarized distance to *neighbor* (inf if untracked)."""
        entry = self._entries.get(neighbor)
        if entry is None:
            return float("inf")
        return entry.mean(geometric=self._parameters.use_geometric_mean)

    def items(self) -> Iterator[Tuple[str, float]]:
        geometric = self._parameters.use_geometric_mean
        for neighbor, entry in self._entries.items():
            yield neighbor, entry.mean(geometric=geometric)

    def nearest(self, count: Optional[int] = None) -> List[Tuple[str, float]]:
        """Neighbors sorted by increasing distance."""
        ranked = sorted(self.items(), key=lambda item: (item[1], item[0]))
        return ranked if count is None else ranked[:count]

    def entries(self) -> Iterator[Tuple[str, DistanceSummary]]:
        """All (neighbor, summary) pairs, in insertion order.

        The public persistence surface: both table implementations
        (this one and :class:`~repro.core.arena.ArenaTable`) expose it,
        so serialization never reaches into representation details.
        """
        return iter(self._entries.items())

    def remove(self, neighbor: str) -> None:
        if self._entries.pop(neighbor, None) is not None:
            self._deregister(neighbor)
            self._mark_dirty(neighbor)
            if self._owner is not None:
                self._mark_dirty(self._owner)

    # ------------------------------------------------------------------
    # reverse-index bookkeeping (owned by NeighborStore)
    # ------------------------------------------------------------------
    def _register(self, neighbor: str) -> None:
        if self._index is not None:
            self._index.setdefault(neighbor, set()).add(self._owner)

    def _deregister(self, neighbor: str) -> None:
        if self._index is not None:
            owners = self._index.get(neighbor)
            if owners is not None:
                owners.discard(self._owner)
                if not owners:
                    del self._index[neighbor]

    def _mark_dirty(self, file: str) -> None:
        if self._dirty is not None:
            self._dirty.add(file)

    def observe(self, neighbor: str, distance: float, now: int,
                deletable: Optional[Set[str]] = None) -> bool:
        """Record one observed distance to *neighbor* at reference-time *now*.

        Returns True if the observation was incorporated (the update
        either hit an existing entry, fit in free space, or won the
        replacement priority), False if it was discarded.
        """
        # Compensation (section 3.1.3): distances beyond M are recorded
        # as M, partially adjusting for the truncated window.
        if distance > self._parameters.lookback_window:
            distance = float(self._parameters.compensation_distance)
            if self._metrics is not None:
                self._metrics.incr("neighbor.compensations")

        entry = self._entries.get(neighbor)
        if entry is not None:
            entry.add(distance, now=now)
            if distance > self._worst_bound:
                self._worst_bound = distance
            return True
        if len(self._entries) < self._parameters.max_neighbors:
            fresh = DistanceSummary()
            fresh.add(distance, now=now)
            self._entries[neighbor] = fresh
            self._register(neighbor)
            if self._owner is not None:
                self._mark_dirty(self._owner)
            if distance > self._worst_bound:
                self._worst_bound = distance
            if now < self._oldest_update:
                self._oldest_update = now
            return True
        victim = self._choose_victim(distance, now, deletable or set())
        if victim is None:
            if self._metrics is not None:
                self._metrics.incr("neighbor.rejections")
            return False
        del self._entries[victim]
        self._deregister(victim)
        self._mark_dirty(victim)
        if self._owner is not None:
            self._mark_dirty(self._owner)
        fresh = DistanceSummary()
        fresh.add(distance, now=now)
        self._entries[neighbor] = fresh
        self._register(neighbor)
        if distance > self._worst_bound:
            self._worst_bound = distance
        if now < self._oldest_update:
            self._oldest_update = now
        if self._metrics is not None:
            self._metrics.incr("neighbor.evictions")
        return True

    def _choose_victim(self, candidate_distance: float, now: int,
                       deletable: Set[str]) -> Optional[str]:
        """Apply the three-step replacement priority of section 3.1.3."""
        # 1. A closely related file marked for deletion.
        if deletable:
            marked = [name for name in self._entries if name in deletable]
            if marked:
                return min(marked)  # deterministic among marked entries
        # 2. The entry with the largest current distance, replaced only
        #    if farther than the candidate.  Ties break to the smallest
        #    name: the choice must be a pure function of table state so
        #    the columnar engine (which never draws from a per-table
        #    rng) evicts the same victim as this reference path.  If
        #    the incremental bound already rules a replacement out, the
        #    exact maximum cannot exceed the candidate either and the
        #    scan is skipped entirely.
        if self._worst_bound > candidate_distance:
            geometric = self._parameters.use_geometric_mean
            largest = max(entry.mean(geometric=geometric)
                          for entry in self._entries.values())
            self._worst_bound = largest   # tighten while we know it
            if largest > candidate_distance:
                return min(name for name, entry in self._entries.items()
                           if entry.mean(geometric=geometric) == largest)
        elif self._metrics is not None:
            self._metrics.incr("neighbor.bound_skips")
        # 3. Aging: a very old, inactive entry may be replaced anyway.
        # _oldest_update never exceeds the true minimum last_update, so
        # when even it is within the threshold no entry can be aged and
        # the scan is skipped; when it does scan, the exact minimum is
        # recorded so subsequent calls skip until real aging recurs.
        threshold = self._parameters.aging_threshold
        if now - self._oldest_update > threshold:
            aged_best = None
            true_oldest = float("inf")
            for name, entry in self._entries.items():
                last = entry.last_update
                if last < true_oldest:
                    true_oldest = last
                if now - last > threshold:
                    if aged_best is None or (last, name) < aged_best:
                        aged_best = (last, name)
            self._oldest_update = true_oldest
            if aged_best is not None:
                return aged_best[1]
        return None

    def load_entry(self, neighbor: str, summary: DistanceSummary) -> None:
        """Install a deserialized entry, keeping index and bound valid."""
        if neighbor not in self._entries:
            self._register(neighbor)
        self._entries[neighbor] = summary
        if self._owner is not None:
            self._mark_dirty(self._owner)
        mean = summary.mean(geometric=self._parameters.use_geometric_mean)
        if mean > self._worst_bound:
            self._worst_bound = mean
        if summary.last_update < self._oldest_update:
            self._oldest_update = summary.last_update


class NeighborStore:
    """All per-file neighbor tables, plus the deletion-mark set."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 seed: int = 0, metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self._tables: Dict[str, NeighborTable] = {}
        self._rng = random.Random(seed)
        self._metrics = metrics
        self.marked_for_deletion: Set[str] = set()
        # Reverse index: file -> owners whose tables list it as a
        # neighbor.  Renames and removals touch only those tables.
        self._containing: Dict[str, Set[str]] = {}
        # Files whose neighbor sets changed since the last drain; the
        # incremental reclusterer's work queue (repro.core.recluster).
        self._dirty: Set[str] = set()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, file: str) -> bool:
        return file in self._tables

    def table(self, file: str) -> NeighborTable:
        existing = self._tables.get(file)
        if existing is None:
            existing = NeighborTable(self._parameters,
                                     rng=random.Random(self._rng.random()),
                                     owner=file, index=self._containing,
                                     dirty=self._dirty,
                                     metrics=self._metrics)
            self._tables[file] = existing
            self._dirty.add(file)   # a new (even empty) clustering key
        return existing

    def get(self, file: str) -> Optional[NeighborTable]:
        return self._tables.get(file)

    def files(self) -> List[str]:
        return list(self._tables)

    def containing(self, file: str) -> Set[str]:
        """Owners whose neighbor lists currently include *file*."""
        return set(self._containing.get(file, ()))

    def observe(self, from_file: str, to_file: str, distance: float, now: int) -> bool:
        """Record an observed distance from *from_file* to *to_file*."""
        return self.table(from_file).observe(
            to_file, distance, now, deletable=self.marked_for_deletion)

    def rename_file(self, old: str, new: str) -> None:
        """Carry a file's identity across a rename (section 4.8).

        Its own table moves to the new name and every table listing the
        old name is re-keyed (found through the reverse index, not by
        scanning the store), so relationship information survives
        idioms like writing ``foo.c.tmp`` then renaming it over
        ``foo.c``.  A rename over an existing file destroys the
        destination's identity, so its table is dropped; and no table
        may end up listing its own file, so entries that a re-key would
        turn into self-loops are discarded.
        """
        if old == new:
            return
        moved = self._tables.pop(old, None)
        if moved is not None:
            self._dirty.add(old)
            self._dirty.add(new)
            displaced = self._tables.pop(new, None)
            if displaced is not None:
                for neighbor in displaced.neighbors():
                    displaced._deregister(neighbor)
                    self._dirty.add(neighbor)
            for neighbor in moved.neighbors():
                moved._deregister(neighbor)
            # The moved table must not list its own new name.
            moved._entries.pop(new, None)
            moved._owner = new
            self._tables[new] = moved
            for neighbor in moved.neighbors():
                moved._register(neighbor)
        # Re-key only the tables that actually list the old name.
        for owner in self._containing.pop(old, set()):
            table = self._tables.get(owner)
            if table is None:
                continue
            entry = table._entries.pop(old, None)
            if entry is None:
                continue
            self._dirty.add(owner)
            self._dirty.add(old)
            if owner == new:
                continue   # re-keying would create a self-entry: drop
            if new not in table._entries:
                table._entries[new] = entry
                table._register(new)
        if old in self.marked_for_deletion:
            self.marked_for_deletion.discard(old)
            self.marked_for_deletion.add(new)

    def remove_file(self, file: str) -> None:
        """Drop *file*'s table and purge it from every neighbor list."""
        table = self._tables.pop(file, None)
        if table is not None:
            for neighbor in table.neighbors():
                table._deregister(neighbor)
                self._dirty.add(neighbor)
        for owner in self._containing.pop(file, set()):
            other = self._tables.get(owner)
            if other is not None:
                other._entries.pop(file, None)
                self._dirty.add(owner)
        self._dirty.add(file)
        self.marked_for_deletion.discard(file)

    def neighbor_set(self, file: str) -> Set[str]:
        """One file's current neighbor set (empty if untracked)."""
        table = self._tables.get(file)
        return table.neighbors() if table is not None else set()

    def drain_dirty(self) -> Set[str]:
        """Files whose neighbor sets changed since the last drain."""
        drained = set(self._dirty)
        self._dirty.clear()
        return drained

    def neighbor_lists(self, now: Optional[int] = None,
                       stale_after: Optional[int] = None) -> Dict[str, Set[str]]:
        """File -> set of tracked neighbors; the clustering input.

        With *now* and *stale_after*, entries not reinforced within the
        last *stale_after* references are omitted -- the second half of
        the paper's aging story (section 3.1.3): inferred relationships
        that stop recurring are removed over time, so long-dormant
        clusters dissolve instead of accreting junk forever.
        """
        if now is None or stale_after is None:
            return {file: table.neighbors()
                    for file, table in self._tables.items()}
        cutoff = now - stale_after
        lists: Dict[str, Set[str]] = {}
        for file, table in self._tables.items():
            fresh = {neighbor for neighbor, entry in table._entries.items()
                     if entry.last_update >= cutoff}
            if fresh:
                lists[file] = fresh
        return lists
