"""Bounded per-file neighbor tables (paper section 3.1.3).

Storing all N^2 pairwise distances is prohibitive, so SEER keeps for
each file only the distances to its n closest neighbors (n = 20).  When
a new distance arrives for a full table, a replacement priority is
applied:

1. highest priority: an entry whose file is marked for deletion;
2. otherwise the entry with the largest current distance is replaced,
   ties broken randomly, but only if it is farther than the candidate;
3. finally, an aging rule lets very old, inactive entries be replaced
   by newer ones so the table can track changes in user behaviour and
   shed incorrectly inferred relationships.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.distance import DistanceSummary
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters


class NeighborTable:
    """The n-nearest-neighbor list of a single file."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 rng: Optional[random.Random] = None) -> None:
        self._parameters = parameters
        self._entries: Dict[str, DistanceSummary] = {}
        self._rng = rng if rng is not None else random.Random(0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, neighbor: str) -> bool:
        return neighbor in self._entries

    def neighbors(self) -> Set[str]:
        """The set of neighbor file ids currently tracked."""
        return set(self._entries)

    def summary(self, neighbor: str) -> Optional[DistanceSummary]:
        return self._entries.get(neighbor)

    def distance_to(self, neighbor: str) -> float:
        """Current summarized distance to *neighbor* (inf if untracked)."""
        entry = self._entries.get(neighbor)
        if entry is None:
            return float("inf")
        return entry.mean(geometric=self._parameters.use_geometric_mean)

    def items(self) -> Iterator[Tuple[str, float]]:
        geometric = self._parameters.use_geometric_mean
        for neighbor, entry in self._entries.items():
            yield neighbor, entry.mean(geometric=geometric)

    def nearest(self, count: Optional[int] = None) -> List[Tuple[str, float]]:
        """Neighbors sorted by increasing distance."""
        ranked = sorted(self.items(), key=lambda item: (item[1], item[0]))
        return ranked if count is None else ranked[:count]

    def remove(self, neighbor: str) -> None:
        self._entries.pop(neighbor, None)

    def observe(self, neighbor: str, distance: float, now: int,
                deletable: Optional[Set[str]] = None) -> bool:
        """Record one observed distance to *neighbor* at reference-time *now*.

        Returns True if the observation was incorporated (the update
        either hit an existing entry, fit in free space, or won the
        replacement priority), False if it was discarded.
        """
        # Compensation (section 3.1.3): distances beyond M are recorded
        # as M, partially adjusting for the truncated window.
        if distance > self._parameters.lookback_window:
            distance = float(self._parameters.compensation_distance)

        entry = self._entries.get(neighbor)
        if entry is not None:
            entry.add(distance, now=now)
            return True
        if len(self._entries) < self._parameters.max_neighbors:
            fresh = DistanceSummary()
            fresh.add(distance, now=now)
            self._entries[neighbor] = fresh
            return True
        victim = self._choose_victim(distance, now, deletable or set())
        if victim is None:
            return False
        del self._entries[victim]
        fresh = DistanceSummary()
        fresh.add(distance, now=now)
        self._entries[neighbor] = fresh
        return True

    def _choose_victim(self, candidate_distance: float, now: int,
                       deletable: Set[str]) -> Optional[str]:
        """Apply the three-step replacement priority of section 3.1.3."""
        # 1. A closely related file marked for deletion.
        marked = [name for name in self._entries if name in deletable]
        if marked:
            return min(marked)  # deterministic among marked entries
        # 2. The entry with the largest current distance, ties broken
        #    randomly, replaced only if farther than the candidate.
        geometric = self._parameters.use_geometric_mean
        largest = max(entry.mean(geometric=geometric) for entry in self._entries.values())
        if largest > candidate_distance:
            worst = [name for name, entry in self._entries.items()
                     if entry.mean(geometric=geometric) == largest]
            return self._rng.choice(sorted(worst))
        # 3. Aging: a very old, inactive entry may be replaced anyway.
        aged = [name for name, entry in self._entries.items()
                if now - entry.last_update > self._parameters.aging_threshold]
        if aged:
            return min(aged, key=lambda name: (self._entries[name].last_update, name))
        return None


class NeighborStore:
    """All per-file neighbor tables, plus the deletion-mark set."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 seed: int = 0) -> None:
        self._parameters = parameters
        self._tables: Dict[str, NeighborTable] = {}
        self._rng = random.Random(seed)
        self.marked_for_deletion: Set[str] = set()

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, file: str) -> bool:
        return file in self._tables

    def table(self, file: str) -> NeighborTable:
        existing = self._tables.get(file)
        if existing is None:
            existing = NeighborTable(self._parameters,
                                     rng=random.Random(self._rng.random()))
            self._tables[file] = existing
        return existing

    def get(self, file: str) -> Optional[NeighborTable]:
        return self._tables.get(file)

    def files(self) -> List[str]:
        return list(self._tables)

    def observe(self, from_file: str, to_file: str, distance: float, now: int) -> bool:
        """Record an observed distance from *from_file* to *to_file*."""
        return self.table(from_file).observe(
            to_file, distance, now, deletable=self.marked_for_deletion)

    def rename_file(self, old: str, new: str) -> None:
        """Carry a file's identity across a rename (section 4.8).

        Its own table moves to the new name and every other table's
        entry for the old name is re-keyed, so relationship information
        survives idioms like writing ``foo.c.tmp`` then renaming it
        over ``foo.c``.
        """
        if old == new:
            return
        table = self._tables.pop(old, None)
        if table is not None:
            self._tables[new] = table
        for other in self._tables.values():
            entry = other._entries.pop(old, None)
            if entry is not None and new not in other._entries:
                other._entries[new] = entry
        if old in self.marked_for_deletion:
            self.marked_for_deletion.discard(old)
            self.marked_for_deletion.add(new)

    def remove_file(self, file: str) -> None:
        """Drop *file*'s table and purge it from every neighbor list."""
        self._tables.pop(file, None)
        for table in self._tables.values():
            table.remove(file)
        self.marked_for_deletion.discard(file)

    def neighbor_lists(self, now: Optional[int] = None,
                       stale_after: Optional[int] = None) -> Dict[str, Set[str]]:
        """File -> set of tracked neighbors; the clustering input.

        With *now* and *stale_after*, entries not reinforced within the
        last *stale_after* references are omitted -- the second half of
        the paper's aging story (section 3.1.3): inferred relationships
        that stop recurring are removed over time, so long-dormant
        clusters dissolve instead of accreting junk forever.
        """
        if now is None or stale_after is None:
            return {file: table.neighbors()
                    for file, table in self._tables.items()}
        cutoff = now - stale_after
        lists: Dict[str, Set[str]] = {}
        for file, table in self._tables.items():
            fresh = {neighbor for neighbor, entry in table._entries.items()
                     if entry.last_update >= cutoff}
            if fresh:
                lists[file] = fresh
        return lists
