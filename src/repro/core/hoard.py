"""Hoard management: project selection and hoard-miss accounting.

When new hoard contents are chosen, SEER ranks the projects (clusters)
by how recently they were active and selects the highest-priority
projects until the maximum hoard size is reached.  Only complete
projects are hoarded, under the assumption that a partial project is
not sufficient to make progress (section 2).  Certain files bypass the
clustering decision entirely (sections 4.2, 4.3, 4.6): frequently
referenced files, critical/control files, and non-file objects are
always included.

Hoard misses (section 4.4) are recorded with the paper's five-level
severity scale, both manually (the user-run recording program) and
automatically (an access to a file known to exist but absent from the
hoard).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.clustering import ClusterSet
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters

SizeFunction = Callable[[str], int]


class MissSeverity(enum.IntEnum):
    """Section 4.4's user-specified severity codes."""

    COMPUTER_UNUSABLE = 0   # critical startup file unavailable
    TASK_CHANGED = 1        # primary file for the task not hoarded
    ACTIVITY_MODIFIED = 2   # same task, different activity
    LITTLE_TROUBLE = 3      # little or no trouble
    PRELOAD_ONLY = 4        # not needed now; preload for the future


@dataclass
class HoardMiss:
    """One recorded hoard miss."""

    path: str
    time: float
    severity: Optional[MissSeverity] = None  # None for automatic detections
    automatic: bool = False


@dataclass
class HoardSelection:
    """The outcome of one hoard-filling decision."""

    files: Set[str] = field(default_factory=set)
    total_bytes: int = 0
    budget: int = 0
    clusters_included: List[int] = field(default_factory=list)
    clusters_skipped: List[int] = field(default_factory=list)
    always_hoarded: Set[str] = field(default_factory=set)

    def __contains__(self, path: str) -> bool:
        return path in self.files

    @property
    def utilization(self) -> float:
        return self.total_bytes / self.budget if self.budget else 0.0


ACTIVITY_DEPTH = 3


def cluster_activity(members: Iterable[str],
                     recency: Mapping[str, float]) -> float:
    """How recently a project was *actively* used.

    A project is active when several of its members are recent, not
    when one stray reference (a one-off browse, a find hit) touched a
    single file.  We use the ACTIVITY_DEPTH-th most recent member
    reference (or the oldest for projects smaller than that), which a
    real attention shift reaches within the first burst of work but a
    single stray reference never moves.
    """
    values = sorted((recency.get(member, float("-inf")) for member in members),
                    reverse=True)
    if not values:
        return float("-inf")
    return values[min(ACTIVITY_DEPTH - 1, len(values) - 1)]


def rank_clusters(clusters: ClusterSet, recency: Mapping[str, float]) -> List[int]:
    """Order cluster ids by priority: most recently active first.

    Ties are broken toward smaller clusters (cheaper to include), then
    by id for determinism.
    """
    def priority(cluster_id: int) -> Tuple[float, int, int]:
        members = clusters.members(cluster_id)
        return (-cluster_activity(members, recency), len(members), cluster_id)

    return sorted(clusters.cluster_ids(), key=priority)


class HoardManager:
    """Builds hoard selections from cluster assignments."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS) -> None:
        self._parameters = parameters

    def build(self, clusters: ClusterSet, sizes: SizeFunction,
              recency: Mapping[str, float], budget: int,
              always_hoard: Iterable[str] = ()) -> HoardSelection:
        """Choose hoard contents within *budget* bytes.

        Always-hoard files are charged first; then whole projects are
        added in priority order.  A project that does not fit is
        skipped (not truncated), preserving the complete-projects-only
        rule.
        """
        selection = HoardSelection(budget=budget)
        for path in sorted(set(always_hoard)):
            size = sizes(path)
            if path not in selection.files:
                selection.files.add(path)
                selection.always_hoarded.add(path)
                selection.total_bytes += size

        for cluster_id in rank_clusters(clusters, recency):
            members = clusters.members(cluster_id)
            new_files = sorted(members - selection.files)
            added_bytes = sum(sizes(path) for path in new_files)
            if selection.total_bytes + added_bytes <= budget:
                selection.files.update(new_files)
                selection.total_bytes += added_bytes
                selection.clusters_included.append(cluster_id)
            else:
                selection.clusters_skipped.append(cluster_id)
        return selection

    def miss_free_size(self, clusters: ClusterSet, sizes: SizeFunction,
                       recency: Mapping[str, float], needed: Set[str],
                       always_hoard: Iterable[str] = ()) -> Tuple[int, Set[str]]:
        """The miss-free hoard size under SEER's policy (section 5.1.2).

        Walk projects in priority order, accumulating their sizes,
        until every file in *needed* that SEER knows about is covered;
        the accumulated total is the hoard size SEER would have needed
        to avoid all misses.  Files absent from every cluster (never
        seen before the disconnection) are returned as uncoverable --
        no hoarding algorithm could have hoarded them.
        """
        hoarded: Set[str] = set()
        total = 0
        for path in sorted(set(always_hoard)):
            if path not in hoarded:
                hoarded.add(path)
                total += sizes(path)
        coverable = {path for path in needed
                     if clusters.clusters_of(path) or path in hoarded}
        remaining = set(coverable) - hoarded
        if not remaining:
            return total, needed - coverable
        for cluster_id in rank_clusters(clusters, recency):
            members = clusters.members(cluster_id)
            new_files = members - hoarded
            total += sum(sizes(path) for path in sorted(new_files))
            hoarded |= new_files
            remaining -= members
            if not remaining:
                break
        return total, needed - coverable


class MissLog:
    """Records hoard misses, manual and automatic (section 4.4)."""

    def __init__(self) -> None:
        self._misses: List[HoardMiss] = []

    def record_manual(self, path: str, time: float,
                      severity: MissSeverity) -> HoardMiss:
        """The user-run recording program: logs the miss and arranges
        for the file to be hoarded at the next reconnection."""
        miss = HoardMiss(path=path, time=time, severity=MissSeverity(severity))
        self._misses.append(miss)
        return miss

    def record_automatic(self, path: str, time: float) -> HoardMiss:
        """Automated detection: an access to a file known to exist but
        absent from the hoard."""
        miss = HoardMiss(path=path, time=time, automatic=True)
        self._misses.append(miss)
        return miss

    @property
    def misses(self) -> List[HoardMiss]:
        return list(self._misses)

    def manual_misses(self) -> List[HoardMiss]:
        return [m for m in self._misses if not m.automatic]

    def by_severity(self, severity: MissSeverity) -> List[HoardMiss]:
        return [m for m in self._misses if m.severity == severity]

    def paths_to_hoard(self) -> Set[str]:
        """Files whose misses were recorded; hoarded at reconnection."""
        return {m.path for m in self._misses}

    def first_miss_time(self) -> Optional[float]:
        if not self._misses:
            return None
        return min(m.time for m in self._misses)

    def clear(self) -> None:
        self._misses.clear()

    def __len__(self) -> int:
        return len(self._misses)
