"""Columnar neighbor arena: the fused correlator ingest hot path.

The reference pipeline walks three object layers per observed pair --
``LifetimeDistanceCalculator`` emits ``(from, to, distance)`` tuples,
``NeighborStore.observe`` routes each through a ``NeighborTable``, and
``DistanceSummary`` objects accumulate the running means.  At
production rates the attribute lookups, tuple allocation and method
dispatch dominate the arithmetic by an order of magnitude.

This module re-architects that state as a columnar arena:

* **Interning.**  Every path is interned once to a dense integer file
  id (fid).  The hot loop compares and hashes small ints, never path
  strings; paths reappear only at the query/persistence boundary.

* **Flat entry rows.**  Each file's neighbor row is a dict mapping
  neighbor fid to a 5-slot entry ``[count, log_sum, linear_sum,
  last_update, mean_cache]`` -- the exact fields of
  :class:`~repro.core.distance.DistanceSummary`, as a plain list.  One
  dict probe returns the mutable entry; an update is five C-level item
  writes with zero allocation.  ``mean_cache`` is ``-1.0`` when stale,
  mirroring the summary's invalidate-on-add caching, so victim scans
  are bit-identical to the reference path.

* **Fused scan.**  :class:`ColumnarEngine` folds the per-process
  lifetime-distance scan and the arena update into a single loop: the
  distance of each emitted pair is consumed in place instead of being
  materialized as a tuple list and re-dispatched.

* **Columnar snapshots.**  :meth:`NeighborArena.columnar` flattens the
  arena into parallel numpy arrays (owner fid, neighbor fid, count,
  log sum, linear sum, last update) for whole-store queries; the
  stale-link filter used by clustering is a single vectorized mask
  over the ``last_update`` column instead of a per-entry Python scan.

Determinism contract (fenced by ``tests/core/test_equivalence.py``):
for any event stream, the arena reaches *exactly* the state of the
reference ``NeighborStore`` path -- same entries, same float sums,
same eviction victims, same recency.  Two properties make this
possible: within one open every updated row belongs to a distinct
owner, so fusing cannot reorder updates to a single table; and
eviction victims are a pure function of table state (no rng -- see
``NeighborTable._choose_victim``), so batching cannot desynchronize a
random stream.  Per-pair numpy mutation was measured and rejected:
update batches here are small (tens of entries across distinct rows),
where ufunc dispatch costs more than the scalar loop it replaces;
numpy earns its keep on the whole-arena query paths instead.  See
``docs/hot-path.md`` for layout diagrams and measurements.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, MutableSet, Optional, Set, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.distance import DistanceSummary
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.observability import Metrics

#: One neighbor entry: [count, log_sum, linear_sum, last_update,
#: mean_cache]; mean_cache < 0 means "recompute on next read".
Entry = List[float]

_DIRTY_MEAN = -1.0


class NeighborArena:
    """Interned, columnar neighbor state shared by engine and store."""

    def __init__(self, parameters: SeerParameters = DEFAULT_PARAMETERS,
                 metrics: Optional[Metrics] = None) -> None:
        self._parameters = parameters
        self._metrics = metrics
        self._fids: Dict[str, int] = {}
        self._paths: List[str] = []
        #: fid -> {neighbor fid -> Entry}; insertion order of rows
        #: matches the reference store's table-creation order.
        self._rows: Dict[int, Dict[int, Entry]] = {}
        #: Incremental per-row bounds (see NeighborTable): an upper
        #: bound on the largest mean, a lower bound on the oldest
        #: last_update.  Only replacement decisions consult them.
        self._bound: Dict[int, float] = {}
        self._oldest: Dict[int, float] = {}
        #: Reverse index: fid -> owner fids whose rows list it.
        self._containing: Dict[int, Set[int]] = {}
        self._deletable: Set[int] = set()
        #: Files whose neighbor *set* changed since the last drain;
        #: feeds the incremental reclusterer (repro.core.recluster).
        self._dirty: Set[int] = set()
        self._geometric = parameters.use_geometric_mean

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, path: str) -> int:
        fid = self._fids.get(path)
        if fid is None:
            fid = len(self._paths)
            self._fids[path] = fid
            self._paths.append(path)
        return fid

    def fid_of(self, path: str) -> Optional[int]:
        return self._fids.get(path)

    def path_of(self, fid: int) -> str:
        return self._paths[fid]

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def ensure_row(self, fid: int) -> Dict[int, Entry]:
        row = self._rows.get(fid)
        if row is None:
            row = self._rows[fid] = {}
            self._bound[fid] = 0.0
            self._oldest[fid] = math.inf
            self._dirty.add(fid)   # a new (even empty) clustering key
        return row

    def mean_of(self, entry: Entry) -> float:
        """The cached summarized mean, recomputed exactly as
        :meth:`DistanceSummary.mean` would."""
        mean = entry[4]
        if mean < 0.0:
            count = entry[0]
            if count <= 0:
                return math.inf
            if self._geometric:
                mean = math.expm1(entry[1] / count)
            else:
                mean = entry[2] / count
            entry[4] = mean
        return mean

    # ------------------------------------------------------------------
    # the replacement priority (paper section 3.1.3)
    # ------------------------------------------------------------------
    def choose_victim(self, owner: int, row: Dict[int, Entry],
                      candidate_distance: float, now: int) -> Optional[int]:
        """Three-rule replacement, mirroring ``NeighborTable._choose_victim``.

        Every choice is a pure function of table state: rule 1 and the
        rule-2 tie both break to the smallest *path* (not fid, so the
        outcome is independent of interning order), rule 3 to the
        oldest ``(last_update, path)``.
        """
        paths = self._paths
        deletable = self._deletable
        if deletable:
            best_path: Optional[str] = None
            best_fid = -1
            for fid in row:
                if fid in deletable:
                    path = paths[fid]
                    if best_path is None or path < best_path:
                        best_path, best_fid = path, fid
            if best_path is not None:
                return best_fid
        if self._bound[owner] > candidate_distance:
            mean_of = self.mean_of
            largest = 0.0
            for entry in row.values():
                mean = mean_of(entry)
                if mean > largest:
                    largest = mean
            self._bound[owner] = largest   # tighten while we know it
            if largest > candidate_distance:
                best_path = None
                best_fid = -1
                for fid, entry in row.items():
                    if entry[4] == largest:
                        path = paths[fid]
                        if best_path is None or path < best_path:
                            best_path, best_fid = path, fid
                return best_fid
        elif self._metrics is not None:
            self._metrics.incr("neighbor.bound_skips")
        threshold = self._parameters.aging_threshold
        if now - self._oldest[owner] > threshold:
            aged_key: Optional[Tuple[float, str]] = None
            aged_fid = -1
            true_oldest = math.inf
            for fid, entry in row.items():
                last = entry[3]
                if last < true_oldest:
                    true_oldest = last
                if now - last > threshold:
                    key = (last, paths[fid])
                    if aged_key is None or key < aged_key:
                        aged_key, aged_fid = key, fid
            self._oldest[owner] = true_oldest
            if aged_key is not None:
                return aged_fid
        return None

    # ------------------------------------------------------------------
    # single-pair update (the non-fused API path; the fused loop in
    # ColumnarEngine.open inlines exactly this logic)
    # ------------------------------------------------------------------
    def update(self, owner: int, neighbor: int, distance: float,
               now: int) -> bool:
        """Record one observed distance; replicates ``NeighborTable.observe``."""
        if distance > self._parameters.lookback_window:
            distance = float(self._parameters.compensation_distance)
            if self._metrics is not None:
                self._metrics.incr("neighbor.compensations")
        row = self.ensure_row(owner)
        nowf = float(now)
        entry = row.get(neighbor)
        if entry is not None:
            entry[0] += 1.0
            entry[1] += math.log1p(distance)
            entry[2] += distance
            entry[3] = nowf
            entry[4] = _DIRTY_MEAN
            if distance > self._bound[owner]:
                self._bound[owner] = distance
            return True
        if len(row) >= self._parameters.max_neighbors:
            victim = self.choose_victim(owner, row, distance, now)
            if victim is None:
                if self._metrics is not None:
                    self._metrics.incr("neighbor.rejections")
                return False
            self.drop_entry(owner, row, victim)
            self._dirty.add(victim)
            if self._metrics is not None:
                self._metrics.incr("neighbor.evictions")
        row[neighbor] = [1.0, math.log1p(distance), distance, nowf,
                         _DIRTY_MEAN]
        owners = self._containing.get(neighbor)
        if owners is None:
            self._containing[neighbor] = {owner}
        else:
            owners.add(owner)
        if distance > self._bound[owner]:
            self._bound[owner] = distance
        if nowf < self._oldest[owner]:
            self._oldest[owner] = nowf
        self._dirty.add(owner)
        return True

    def drop_entry(self, owner: int, row: Dict[int, Entry],
                   neighbor: int) -> None:
        """Remove one entry, keeping the reverse index consistent."""
        del row[neighbor]
        owners = self._containing.get(neighbor)
        if owners is not None:
            owners.discard(owner)
            if not owners:
                del self._containing[neighbor]

    def load_entry(self, owner: int, neighbor: int,
                   summary: DistanceSummary) -> None:
        """Install a deserialized entry (persistence restore path)."""
        row = self.ensure_row(owner)
        if neighbor not in row:
            owners = self._containing.setdefault(neighbor, set())
            owners.add(owner)
        row[neighbor] = [float(summary.count), summary.log_sum,
                         summary.linear_sum, float(summary.last_update),
                         _DIRTY_MEAN]
        mean = self.mean_of(row[neighbor])
        if mean > self._bound[owner]:
            self._bound[owner] = mean
        if summary.last_update < self._oldest[owner]:
            self._oldest[owner] = float(summary.last_update)
        self._dirty.add(owner)

    # ------------------------------------------------------------------
    # rename / remove (paper section 4.8), mirroring NeighborStore
    # ------------------------------------------------------------------
    def rename_file(self, old: str, new: str) -> None:
        if old == new:
            return
        old_fid = self._fids.get(old)
        if old_fid is None:
            return
        new_fid = self.intern(new)
        rows = self._rows
        containing = self._containing
        dirty = self._dirty
        moved = rows.pop(old_fid, None)
        if moved is not None:
            dirty.add(old_fid)
            dirty.add(new_fid)
            displaced = rows.pop(new_fid, None)
            if displaced is not None:
                # A rename over a live file destroys its identity.
                for neighbor in displaced:
                    dirty.add(neighbor)
                    owners = containing.get(neighbor)
                    if owners is not None:
                        owners.discard(new_fid)
                        if not owners:
                            del containing[neighbor]
            for neighbor in moved:
                owners = containing.get(neighbor)
                if owners is not None:
                    owners.discard(old_fid)
                    if not owners:
                        del containing[neighbor]
            # The moved row must not list its own new name.
            moved.pop(new_fid, None)
            rows[new_fid] = moved
            for neighbor in moved:
                containing.setdefault(neighbor, set()).add(new_fid)
            self._bound[new_fid] = self._bound.pop(old_fid)
            self._oldest[new_fid] = self._oldest.pop(old_fid)
        # Re-key only the rows that actually list the old name.
        for owner in sorted(containing.pop(old_fid, set())):
            row = rows.get(owner)
            if row is None:
                continue
            entry = row.pop(old_fid, None)
            if entry is None:
                continue
            dirty.add(owner)
            dirty.add(old_fid)
            if owner == new_fid:
                continue   # re-keying would create a self-entry: drop
            if new_fid not in row:
                row[new_fid] = entry
                containing.setdefault(new_fid, set()).add(owner)
        if old_fid in self._deletable:
            self._deletable.discard(old_fid)
            self._deletable.add(new_fid)

    def remove_file(self, path: str) -> None:
        fid = self._fids.get(path)
        if fid is None:
            return
        row = self._rows.pop(fid, None)
        if row is not None:
            self._bound.pop(fid, None)
            self._oldest.pop(fid, None)
            for neighbor in row:
                self._dirty.add(neighbor)
                owners = self._containing.get(neighbor)
                if owners is not None:
                    owners.discard(fid)
                    if not owners:
                        del self._containing[neighbor]
        for owner in sorted(self._containing.pop(fid, set())):
            other = self._rows.get(owner)
            if other is not None:
                other.pop(fid, None)
                self._dirty.add(owner)
        self._dirty.add(fid)
        self._deletable.discard(fid)

    # ------------------------------------------------------------------
    # columnar snapshots (the numpy query layer)
    # ------------------------------------------------------------------
    def columnar(self) -> Dict[str, npt.NDArray[np.float64]]:
        """Flatten the arena into parallel arrays, one slot per entry.

        Columns: ``owner``, ``neighbor`` (fids), ``count``,
        ``log_sum``, ``linear_sum``, ``last_update``.  All float64 so
        one allocation pattern serves every column; counts and fids
        are integral-valued.  This is the bulk-query surface: staleness
        masks, persistence export and analysis scans operate on these
        arrays instead of per-entry Python objects.
        """
        total = sum(len(row) for row in self._rows.values())
        owner = np.empty(total, dtype=np.float64)
        neighbor = np.empty(total, dtype=np.float64)
        count = np.empty(total, dtype=np.float64)
        log_sum = np.empty(total, dtype=np.float64)
        linear_sum = np.empty(total, dtype=np.float64)
        last_update = np.empty(total, dtype=np.float64)
        slot = 0
        for fid, row in self._rows.items():
            for nfid, entry in row.items():
                owner[slot] = fid
                neighbor[slot] = nfid
                count[slot] = entry[0]
                log_sum[slot] = entry[1]
                linear_sum[slot] = entry[2]
                last_update[slot] = entry[3]
                slot += 1
        return {"owner": owner, "neighbor": neighbor, "count": count,
                "log_sum": log_sum, "linear_sum": linear_sum,
                "last_update": last_update}

    def fresh_neighbor_lists(self, cutoff: int) -> Dict[str, Set[str]]:
        """Stale-link filtering as a vectorized mask (section 3.1.3).

        Entries not reinforced since *cutoff* are omitted; owners left
        with no fresh entries are omitted entirely, matching
        ``NeighborStore.neighbor_lists``.
        """
        columns = self.columnar()
        mask = columns["last_update"] >= cutoff
        owners = columns["owner"][mask].astype(np.int64)
        neighbors = columns["neighbor"][mask].astype(np.int64)
        paths = self._paths
        lists: Dict[str, Set[str]] = {}
        for fid, nfid in zip(owners.tolist(), neighbors.tolist()):
            lists.setdefault(paths[fid], set()).add(paths[nfid])
        return lists


class _MarkedSetView(MutableSet[str]):
    """Path-level live view of the arena's marked-for-deletion fids."""

    __slots__ = ("_arena",)

    def __init__(self, arena: NeighborArena) -> None:
        self._arena = arena

    def __contains__(self, path: object) -> bool:
        if not isinstance(path, str):
            return False
        fid = self._arena._fids.get(path)
        return fid is not None and fid in self._arena._deletable

    def __iter__(self) -> Iterator[str]:
        paths = self._arena._paths
        return iter(sorted(paths[fid] for fid in self._arena._deletable))

    def __len__(self) -> int:
        return len(self._arena._deletable)

    def add(self, value: str) -> None:
        self._arena._deletable.add(self._arena.intern(value))

    def discard(self, value: str) -> None:
        fid = self._arena._fids.get(value)
        if fid is not None:
            self._arena._deletable.discard(fid)


class ArenaTable:
    """Read/update view of one arena row, API-compatible with
    :class:`~repro.core.neighbors.NeighborTable`."""

    __slots__ = ("_arena", "_fid")

    def __init__(self, arena: NeighborArena, fid: int) -> None:
        self._arena = arena
        self._fid = fid

    def _row(self) -> Dict[int, Entry]:
        return self._arena._rows.get(self._fid, {})

    def __len__(self) -> int:
        return len(self._row())

    def __contains__(self, neighbor: str) -> bool:
        fid = self._arena._fids.get(neighbor)
        return fid is not None and fid in self._row()

    def neighbors(self) -> Set[str]:
        paths = self._arena._paths
        return {paths[fid] for fid in self._row()}

    def summary(self, neighbor: str) -> Optional[DistanceSummary]:
        fid = self._arena._fids.get(neighbor)
        if fid is None:
            return None
        entry = self._row().get(fid)
        if entry is None:
            return None
        return DistanceSummary(count=int(entry[0]), log_sum=entry[1],
                               linear_sum=entry[2],
                               last_update=int(entry[3]))

    def distance_to(self, neighbor: str) -> float:
        fid = self._arena._fids.get(neighbor)
        if fid is None:
            return math.inf
        entry = self._row().get(fid)
        if entry is None:
            return math.inf
        return self._arena.mean_of(entry)

    def items(self) -> Iterator[Tuple[str, float]]:
        arena = self._arena
        paths = arena._paths
        for fid, entry in self._row().items():
            yield paths[fid], arena.mean_of(entry)

    def nearest(self, count: Optional[int] = None) -> List[Tuple[str, float]]:
        ranked = sorted(self.items(), key=lambda item: (item[1], item[0]))
        return ranked if count is None else ranked[:count]

    def entries(self) -> Iterator[Tuple[str, DistanceSummary]]:
        paths = self._arena._paths
        for fid, entry in self._row().items():
            yield paths[fid], DistanceSummary(
                count=int(entry[0]), log_sum=entry[1], linear_sum=entry[2],
                last_update=int(entry[3]))

    def observe(self, neighbor: str, distance: float, now: int) -> bool:
        return self._arena.update(self._fid, self._arena.intern(neighbor),
                                  distance, now)

    def load_entry(self, neighbor: str, summary: DistanceSummary) -> None:
        self._arena.load_entry(self._fid, self._arena.intern(neighbor),
                               summary)

    def remove(self, neighbor: str) -> None:
        fid = self._arena._fids.get(neighbor)
        if fid is None:
            return
        row = self._arena._rows.get(self._fid)
        if row is not None and fid in row:
            self._arena.drop_entry(self._fid, row, fid)
            self._arena._dirty.add(self._fid)
            self._arena._dirty.add(fid)


class ArenaStore:
    """Path-level facade over the arena, API-compatible with
    :class:`~repro.core.neighbors.NeighborStore`."""

    def __init__(self, arena: NeighborArena) -> None:
        self._arena = arena
        self._marked = _MarkedSetView(arena)

    def __len__(self) -> int:
        return len(self._arena._rows)

    def __contains__(self, file: str) -> bool:
        fid = self._arena._fids.get(file)
        return fid is not None and fid in self._arena._rows

    @property
    def marked_for_deletion(self) -> _MarkedSetView:
        return self._marked

    @marked_for_deletion.setter
    def marked_for_deletion(self, paths: Set[str]) -> None:
        arena = self._arena
        arena._deletable.clear()
        for path in sorted(paths):
            arena._deletable.add(arena.intern(path))

    def table(self, file: str) -> ArenaTable:
        fid = self._arena.intern(file)
        self._arena.ensure_row(fid)
        return ArenaTable(self._arena, fid)

    def get(self, file: str) -> Optional[ArenaTable]:
        fid = self._arena._fids.get(file)
        if fid is None or fid not in self._arena._rows:
            return None
        return ArenaTable(self._arena, fid)

    def files(self) -> List[str]:
        paths = self._arena._paths
        return [paths[fid] for fid in self._arena._rows]

    def containing(self, file: str) -> Set[str]:
        fid = self._arena._fids.get(file)
        if fid is None:
            return set()
        paths = self._arena._paths
        return {paths[owner] for owner in self._arena._containing.get(fid, ())}

    def observe(self, from_file: str, to_file: str, distance: float,
                now: int) -> bool:
        arena = self._arena
        return arena.update(arena.intern(from_file), arena.intern(to_file),
                            distance, now)

    def rename_file(self, old: str, new: str) -> None:
        self._arena.rename_file(old, new)

    def remove_file(self, file: str) -> None:
        self._arena.remove_file(file)

    def neighbor_set(self, file: str) -> Set[str]:
        """One file's current neighbor set (empty if untracked)."""
        fid = self._arena._fids.get(file)
        if fid is None:
            return set()
        row = self._arena._rows.get(fid)
        if row is None:
            return set()
        paths = self._arena._paths
        return {paths[nfid] for nfid in row}

    def neighbor_lists(self, now: Optional[int] = None,
                       stale_after: Optional[int] = None) -> Dict[str, Set[str]]:
        if now is None or stale_after is None:
            paths = self._arena._paths
            return {paths[fid]: {paths[nfid] for nfid in row}
                    for fid, row in self._arena._rows.items()}
        return self._arena.fresh_neighbor_lists(now - stale_after)

    def drain_dirty(self) -> Set[str]:
        """Files whose neighbor sets changed since the last drain."""
        arena = self._arena
        paths = arena._paths
        drained = {paths[fid] for fid in arena._dirty}
        arena._dirty.clear()
        return drained

    def columnar(self) -> Dict[str, npt.NDArray[np.float64]]:
        return self._arena.columnar()


class _EngineStream:
    """Per-process lifetime-distance state, fid-keyed (section 4.7)."""

    __slots__ = ("open_count", "last_open_index", "open_counter")

    def __init__(self) -> None:
        self.open_count: Dict[int, int] = {}
        self.last_open_index: Dict[int, int] = {}
        self.open_counter = 0


class ColumnarEngine:
    """Fused per-process distance scan + arena update (the hot loop).

    Implements the same narrow interface as the correlator's reference
    engine: per-pid streams with fork/exit inheritance, open/close/
    point reference ingestion, rename re-keying and forget.  The open
    loop is a hand-fused copy of ``LifetimeDistanceCalculator.open``
    feeding ``NeighborArena.update`` without intermediate tuples; its
    semantics are pinned entry-for-entry to the reference path by the
    fast==reference differential suite.
    """

    def __init__(self, arena: NeighborArena,
                 parameters: SeerParameters = DEFAULT_PARAMETERS,
                 metrics: Optional[Metrics] = None) -> None:
        self._arena = arena
        self._metrics = metrics
        self._streams: Dict[int, _EngineStream] = {}
        self._lookback = parameters.lookback_window
        self._compensation = float(parameters.compensation_distance)
        self._cap = parameters.max_neighbors
        self._prune = parameters.prune_lookback
        self._compensate = parameters.emit_compensation
        self._threshold = parameters.aging_threshold

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def ensure(self, pid: int) -> None:
        if pid not in self._streams:
            self._streams[pid] = _EngineStream()

    def fork(self, pid: int, ppid: int) -> int:
        """Clone the parent's history into a child stream; returns the
        child's open counter (the merge base for exit)."""
        child = _EngineStream()
        if ppid:
            parent = self._streams.get(ppid)
            if parent is None:
                parent = self._streams[ppid] = _EngineStream()
            child.open_count = dict(parent.open_count)
            child.last_open_index = dict(parent.last_open_index)
            child.open_counter = parent.open_counter
        self._streams[pid] = child
        return child.open_counter

    def exit(self, pid: int, merge_ppid: int, since: int) -> None:
        """Drop the stream, merging post-fork history into the parent
        (section 4.7).  ``merge_ppid`` is 0 for streams not created by
        a fork."""
        child = self._streams.pop(pid, None)
        if child is None or not merge_ppid:
            return
        parent = self._streams.get(merge_ppid)
        if parent is None:
            return
        new_opens = child.open_counter - since
        if new_opens < 0:
            new_opens = 0
        base = parent.open_counter
        parent.open_counter = base + new_opens
        parent_index = parent.last_open_index
        for fid, child_index in child.last_open_index.items():
            if child_index <= since:
                continue
            mapped = base + (child_index - since)
            if mapped > parent_index.get(fid, -1):
                parent_index[fid] = mapped

    # ------------------------------------------------------------------
    # reference ingestion (the fused hot loop)
    # ------------------------------------------------------------------
    def open(self, pid: int, path: str, now: int) -> int:
        """Record an open; ingest all emitted distances.  Returns the
        opened file's fid (for :meth:`point`)."""
        stream = self._streams.get(pid)
        if stream is None:
            stream = self._streams[pid] = _EngineStream()
        arena = self._arena
        fid = arena._fids.get(path)
        if fid is None:
            fid = arena.intern(path)
        open_count = stream.open_count
        last_open = stream.last_open_index
        stream.open_counter += 1
        index = stream.open_counter

        rows = arena._rows
        bound = arena._bound
        oldest = arena._oldest
        containing = arena._containing
        dirty = arena._dirty
        log1p = math.log1p
        lookback = self._lookback
        compensation = self._compensation
        cap = self._cap
        nowf = float(now)
        aged: Optional[List[int]] = None
        pairs = 0
        compensated = 0
        evictions = 0
        rejections = 0

        for other, other_index in last_open.items():
            if other == fid:
                continue
            if other in open_count:
                distance = 0.0
            else:
                gap = index - other_index
                if gap > lookback:
                    # Over-window (section 3.1.3): prune the entry --
                    # it can never re-enter the window -- and emit its
                    # distance once, which the arena records clamped
                    # to the compensation distance.
                    if self._prune:
                        if aged is None:
                            aged = [other]
                        else:
                            aged.append(other)
                    if not self._compensate:
                        continue
                    compensated += 1
                    distance = compensation
                else:
                    distance = float(gap)
            pairs += 1
            row = rows.get(other)
            if row is None:
                row = rows[other] = {}
                bound[other] = 0.0
                oldest[other] = math.inf
            entry = row.get(fid)
            if entry is not None:
                entry[0] += 1.0
                entry[1] += log1p(distance)
                entry[2] += distance
                entry[3] = nowf
                entry[4] = _DIRTY_MEAN
                if distance > bound[other]:
                    bound[other] = distance
                continue
            if len(row) >= cap:
                victim = arena.choose_victim(other, row, distance, now)
                if victim is None:
                    rejections += 1
                    continue
                del row[victim]
                owners = containing.get(victim)
                if owners is not None:
                    owners.discard(other)
                    if not owners:
                        del containing[victim]
                dirty.add(victim)
                evictions += 1
            row[fid] = [1.0, log1p(distance), distance, nowf, _DIRTY_MEAN]
            owners = containing.get(fid)
            if owners is None:
                containing[fid] = {other}
            else:
                owners.add(other)
            if distance > bound[other]:
                bound[other] = distance
            if nowf < oldest[other]:
                oldest[other] = nowf
            dirty.add(other)

        if aged is not None:
            for other in aged:
                del last_open[other]
        last_open[fid] = index
        open_count[fid] = open_count.get(fid, 0) + 1

        metrics = self._metrics
        if metrics is not None:
            if pairs:
                metrics.incr("correlator.distances_ingested", pairs)
            if aged is not None:
                metrics.incr("distance.pruned_entries", len(aged))
            if compensated:
                metrics.incr("distance.compensated_pairs", compensated)
                metrics.incr("neighbor.compensations", compensated)
            if evictions:
                metrics.incr("neighbor.evictions", evictions)
            if rejections:
                metrics.incr("neighbor.rejections", rejections)
        return fid

    def close(self, pid: int, path: str) -> None:
        stream = self._streams.get(pid)
        if stream is None:
            stream = self._streams[pid] = _EngineStream()
        fid = self._arena._fids.get(path)
        if fid is None:
            return
        count = stream.open_count.get(fid, 0)
        if count > 1:
            stream.open_count[fid] = count - 1
        elif count == 1:
            del stream.open_count[fid]

    def point(self, pid: int, path: str, now: int) -> None:
        fid = self.open(pid, path, now)
        stream = self._streams[pid]
        count = stream.open_count.get(fid, 0)
        if count > 1:
            stream.open_count[fid] = count - 1
        elif count == 1:
            del stream.open_count[fid]

    # ------------------------------------------------------------------
    # identity maintenance
    # ------------------------------------------------------------------
    def rename(self, old: str, new: str) -> None:
        """Re-key stream state across a rename, in every stream."""
        if old == new:
            return
        old_fid = self._arena._fids.get(old)
        if old_fid is None:
            return
        new_fid = self._arena.intern(new)
        for stream in self._streams.values():
            count = stream.open_count.pop(old_fid, None)
            if count is not None:
                stream.open_count[new_fid] = (
                    stream.open_count.get(new_fid, 0) + count)
            index = stream.last_open_index.pop(old_fid, None)
            if index is not None:
                previous = stream.last_open_index.get(new_fid, 0)
                stream.last_open_index[new_fid] = (
                    index if index > previous else previous)

    def forget(self, path: str) -> None:
        """Drop all stream state about *path* (delayed deletion)."""
        fid = self._arena._fids.get(path)
        if fid is None:
            return
        for stream in self._streams.values():
            stream.open_count.pop(fid, None)
            stream.last_open_index.pop(fid, None)
