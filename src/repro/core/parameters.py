"""Tunable parameters of SEER's algorithms (paper section 4.9).

The paper reports devoting significant effort to searching the
parameter space; the defaults below are the published values where the
paper gives them (n = 20, M = 100, 1 % frequent-file threshold) and
reasonable settled values elsewhere.  Everything is collected in one
frozen dataclass so experiments and ablations can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class SeerParameters:
    """All knobs of the observer/correlator/clustering pipeline."""

    # --- semantic-distance heuristic (section 3.1.3) ---
    max_neighbors: int = 20          # n: distances kept per file
    lookback_window: int = 100       # M: references eligible for update
    compensation_distance: int = 100  # value inserted for distances > M
    prune_lookback: bool = True      # drop per-stream entries once they
                                     # age past M, bounding per-open cost
                                     # by the window instead of by every
                                     # file ever seen (False reproduces
                                     # the historical unbounded scan)
    emit_compensation: bool = True   # emit an over-window distance once
                                     # at age-out so the neighbor store
                                     # can record it as M (False silently
                                     # drops the pair, the historical bug)
    aging_threshold: int = 5000      # references after which an entry may
                                     # be evicted regardless of distance
    stale_link_cutoff: int = 0       # if > 0, neighbor entries not
                                     # reinforced within this many
                                     # references are ignored at
                                     # clustering time (aging, sec 3.1.3)
    columnar_ingest: bool = True     # fuse the per-process distance scan
                                     # with the neighbor-arena update
                                     # (repro.core.arena); False keeps the
                                     # per-entry dict/object reference
                                     # path, preserved for equivalence
                                     # testing and as the seed baseline
    incremental_recluster: bool = True  # recluster only dirtied
                                     # neighborhoods between hoard walks
                                     # (repro.core.recluster); False runs
                                     # a full Jarvis-Patrick pass per
                                     # build.  Ignored (full pass) when
                                     # stale_link_cutoff > 0.
    # --- data reduction (section 3.1.2) ---
    use_geometric_mean: bool = True  # False -> arithmetic mean (ablation)

    # --- clustering (section 3.3.2) ---
    kn: int = 4                      # shared neighbors to combine clusters
    kf: int = 2                      # shared neighbors to overlap clusters
    directory_distance_weight: float = 1.0    # subtracted (section 3.3.3)
    investigator_weight: float = 1.0          # added (section 3.3.3)
    # Normalized thresholds: compare the shared count divided by the
    # smaller table size against kn_fraction/kf_fraction instead of the
    # absolute kn/kf.  This makes one threshold serve both a 5-file
    # mail project and a 25-file program, at the cost of departing from
    # the paper's absolute formulation; the simulation harness enables
    # it (our synthetic world is ~100x smaller than the deployments the
    # paper tuned its absolute constants on, section 4.9).
    normalize_shared_counts: bool = False
    kn_fraction: float = 0.67
    kf_fraction: float = 0.45

    # --- observer filters ---
    frequent_file_fraction: float = 0.01   # 1 % rule (section 4.2)
    frequent_file_minimum_accesses: int = 1000  # before the rule engages
    meaningless_touch_ratio: float = 0.5   # threshold heuristic (sec. 4.1)
    meaningless_min_potential: int = 20    # don't judge tiny samples
    delete_delay: int = 50                 # deletions retained (section 4.8)

    # --- live-measurement conventions (section 5.1.1) ---
    minimum_disconnection_seconds: float = 15 * 60.0  # 15-minute squash

    def __post_init__(self) -> None:
        if self.kn <= self.kf:
            raise ValueError(f"kn ({self.kn}) must exceed kf ({self.kf})")
        if self.max_neighbors < 1:
            raise ValueError("max_neighbors must be positive")
        if self.lookback_window < 1:
            raise ValueError("lookback_window must be positive")
        if not 0.0 < self.frequent_file_fraction <= 1.0:
            raise ValueError("frequent_file_fraction must be in (0, 1]")
        if self.kn_fraction <= self.kf_fraction:
            raise ValueError(f"kn_fraction ({self.kn_fraction}) must exceed "
                             f"kf_fraction ({self.kf_fraction})")

    def with_changes(self, **changes: object) -> "SeerParameters":
        """Return a copy with *changes* applied (for parameter sweeps)."""
        return replace(self, **changes)


DEFAULT_PARAMETERS = SeerParameters()
