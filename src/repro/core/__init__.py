"""SEER's core: semantic distance, clustering, hoard selection.

This package implements the paper's primary contribution (sections 3
and parts of 4): the three semantic-distance definitions, the online
geometric-mean data reduction, the bounded neighbor tables, the
per-process correlator, the modified Jarvis-Patrick shared-neighbor
clustering with external-information adjustment, and the
whole-projects-only hoard manager with miss accounting.
"""

from repro.core.arena import (
    ArenaStore,
    ArenaTable,
    ColumnarEngine,
    NeighborArena,
)
from repro.core.clustering import (
    ClusterSet,
    Relation,
    SharedNeighborClustering,
    cluster_neighbor_store,
)
from repro.core.correlator import Action, Correlator, ObservedReference
from repro.core.distance import (
    DistanceSummary,
    LifetimeDistanceCalculator,
    RefKind,
    Reference,
    SequenceDistanceCalculator,
    opens,
    temporal_distances,
)
from repro.core.hoard import (
    HoardManager,
    HoardMiss,
    HoardSelection,
    MissLog,
    MissSeverity,
    rank_clusters,
)
from repro.core.neighbors import NeighborStore, NeighborTable
from repro.core.parameters import DEFAULT_PARAMETERS, SeerParameters
from repro.core.recluster import IncrementalClusterer
from repro.core.seer import Seer

__all__ = [
    "Action",
    "ArenaStore",
    "ArenaTable",
    "ClusterSet",
    "ColumnarEngine",
    "IncrementalClusterer",
    "NeighborArena",
    "Correlator",
    "DEFAULT_PARAMETERS",
    "DistanceSummary",
    "HoardManager",
    "HoardMiss",
    "HoardSelection",
    "LifetimeDistanceCalculator",
    "MissLog",
    "MissSeverity",
    "NeighborStore",
    "NeighborTable",
    "ObservedReference",
    "RefKind",
    "Reference",
    "Relation",
    "Seer",
    "SeerParameters",
    "SequenceDistanceCalculator",
    "SharedNeighborClustering",
    "cluster_neighbor_store",
    "opens",
    "rank_clusters",
    "temporal_distances",
]
