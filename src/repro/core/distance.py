"""Semantic distance: Definitions 1-3 of the paper (section 3.1.1).

All three published formulations are implemented:

* :func:`temporal_distances` -- Definition 1, elapsed clock time;
* :class:`SequenceDistanceCalculator` -- Definition 2, intervening
  references;
* :class:`LifetimeDistanceCalculator` -- Definition 3, the measure SEER
  actually uses, based on open/close lifetimes.

All measures are *asymmetric*: the distance from an earlier reference
to a later one.  The data-reduction step (converting many per-reference
distances into one per-file-pair summary) is
:class:`DistanceSummary` / geometric mean, section 3.1.2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.observability import Metrics


class RefKind(enum.Enum):
    """Reference event kinds consumed by the distance calculators."""

    OPEN = "open"
    CLOSE = "close"


@dataclass(frozen=True)
class Reference:
    """One file-reference event in a single stream."""

    file: str
    kind: RefKind
    time: float = 0.0


def opens(sequence: Iterable[str]) -> List[Reference]:
    """Helper: turn a plain file sequence into open+close pairs."""
    events: List[Reference] = []
    for name in sequence:
        events.append(Reference(name, RefKind.OPEN))
        events.append(Reference(name, RefKind.CLOSE))
    return events


# ----------------------------------------------------------------------
# Definition 1: temporal semantic distance
# ----------------------------------------------------------------------
def temporal_distances(events: Iterable[Reference]) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(earlier_file, later_file, elapsed_seconds)`` pairs.

    Definition 1: the temporal semantic distance between two file
    references is the elapsed clock time between them.  Only the
    closest (most recent) pair per file is reported, matching SEER's
    convention for repeated references (footnote 1).
    """
    last_open: Dict[str, float] = {}
    for event in events:
        if event.kind is not RefKind.OPEN:
            continue
        for other, when in last_open.items():
            if other != event.file:
                yield other, event.file, event.time - when
        last_open[event.file] = event.time


# ----------------------------------------------------------------------
# Definition 2: sequence-based semantic distance
# ----------------------------------------------------------------------
class SequenceDistanceCalculator:
    """Definition 2: number of intervening references to *other* files.

    Repeated references are **not** elided: in ``A C C C B`` the
    distance A -> B is 3, the strict interpretation the paper chooses
    (footnote 1), partly to capture intensive work on a single project.
    Only the closest pair of references is used per file pair.
    """

    def __init__(self) -> None:
        self._position = 0                 # index of the next reference
        self._last_seen: Dict[str, int] = {}

    def process(self, file: str) -> List[Tuple[str, str, int]]:
        """Feed one reference; returns new ``(from, to, distance)`` pairs."""
        results = [
            (other, file, self._position - seen_at - 1)
            for other, seen_at in self._last_seen.items()
            if other != file
        ]
        self._last_seen[file] = self._position
        self._position += 1
        return results

    def process_all(self, files: Iterable[str]) -> List[Tuple[str, str, int]]:
        out: List[Tuple[str, str, int]] = []
        for file in files:
            out.extend(self.process(file))
        return out


# ----------------------------------------------------------------------
# Definition 3: lifetime semantic distance
# ----------------------------------------------------------------------
class LifetimeDistanceCalculator:
    """Definition 3: the measure SEER uses.

    The distance from an open of file A to an open of file B is 0 if A
    has not been closed before B is opened, and the number of
    intervening file opens (including the open of B) otherwise.

    The calculator processes a single reference stream (one process, in
    SEER's per-process formulation of section 4.7).  Each call to
    :meth:`open` reports the distances from previously-opened files to
    the newly-opened one, using the most recent open of each earlier
    file (the "closest pair" rule of footnote 1).

    Bounded state (section 3.1.3): with a lookback window M set, an
    entry whose most recent open has aged more than M opens into the
    past can never again yield an in-window distance (ages only grow,
    and a re-open re-keys the entry afresh), so it is *pruned* the
    first time an open finds it aged out.  This bounds the per-open
    cost by the window size plus the number of currently-open files,
    instead of by every file the stream has ever touched.  At the
    moment an entry ages out, its over-window distance is emitted once
    (*compensate*), so the neighbor store can apply the paper's
    compensation rule -- record distances beyond M as M -- rather than
    silently losing the pair.  Files that are still open are exempt
    from pruning: their distance is 0 regardless of age.

    ``prune=False, compensate=False`` reproduces the historical
    unbounded behaviour (skip over-window pairs, forget nothing); it is
    kept as the reference for equivalence tests and as the baseline
    for the ingest-throughput benchmark.
    """

    def __init__(self, lookback_window: Optional[int] = None,
                 prune: bool = True, compensate: bool = True,
                 metrics: Optional[Metrics] = None) -> None:
        self._open_counter = 0
        self._open_count: Dict[str, int] = {}       # currently-open fd count
        self._last_open_index: Dict[str, int] = {}  # most recent open seq
        self._lookback = lookback_window
        self._prune = prune
        self._compensate = compensate
        self._metrics = metrics

    @property
    def opens_processed(self) -> int:
        return self._open_counter

    @property
    def tracked_files(self) -> int:
        """Entries currently held (bounded by M + open files when pruning)."""
        return len(self._last_open_index)

    def open(self, file: str) -> List[Tuple[str, str, int]]:
        """Record an open of *file*; returns ``(from, to, distance)`` pairs."""
        self._open_counter += 1
        index = self._open_counter
        lookback = self._lookback
        open_count = self._open_count
        results: List[Tuple[str, str, int]] = []
        aged: List[str] = []
        compensated = 0
        for other, other_index in self._last_open_index.items():
            if other == file:
                continue
            if other in open_count:
                results.append((other, file, 0))
                continue
            distance = index - other_index
            if lookback is not None and distance > lookback:
                # Outside the update window (section 3.1.3).  Emit the
                # over-window distance once so the neighbor store can
                # record it as the compensation distance, then drop the
                # entry: it can never re-enter the window.
                if self._compensate:
                    results.append((other, file, distance))
                    compensated += 1
                if self._prune:
                    aged.append(other)
                continue
            results.append((other, file, distance))
        if aged:
            for other in aged:
                del self._last_open_index[other]
        if self._metrics is not None and (aged or compensated):
            if aged:
                self._metrics.incr("distance.pruned_entries", len(aged))
            if compensated:
                self._metrics.incr("distance.compensated_pairs", compensated)
        self._last_open_index[file] = index
        open_count[file] = open_count.get(file, 0) + 1
        return results

    def close(self, file: str) -> None:
        """Record a close of *file* (tolerates unbalanced closes)."""
        count = self._open_count.get(file, 0)
        if count > 1:
            self._open_count[file] = count - 1
        elif count == 1:
            # Drop the key entirely so the open-count map stays bounded
            # by the number of *currently* open files.
            del self._open_count[file]

    def point_reference(self, file: str) -> List[Tuple[str, str, int]]:
        """An open immediately followed by a close (sections 3.1.1, 4.8)."""
        results = self.open(file)
        self.close(file)
        return results

    def is_open(self, file: str) -> bool:
        return self._open_count.get(file, 0) > 0

    def forget(self, file: str) -> None:
        """Drop all state about *file* (used after delayed deletion)."""
        self._open_count.pop(file, None)
        self._last_open_index.pop(file, None)

    def rename(self, old: str, new: str) -> None:
        """Re-key a file's stream state across a rename (section 4.8).

        When both names are open (rename over a live destination), the
        descriptors all refer to the surviving identity, so the open
        counts are *summed* -- overwriting would lose open state and
        make the file look closed while descriptors remain.
        """
        if old == new:
            return
        if old in self._open_count:
            self._open_count[new] = (self._open_count.get(new, 0)
                                     + self._open_count.pop(old))
        if old in self._last_open_index:
            index = self._last_open_index.pop(old)
            self._last_open_index[new] = max(
                index, self._last_open_index.get(new, 0))

    def clone(self) -> "LifetimeDistanceCalculator":
        """Copy for a forked child, which inherits the parent's history
        (section 4.7)."""
        copy = LifetimeDistanceCalculator(
            lookback_window=self._lookback, prune=self._prune,
            compensate=self._compensate, metrics=self._metrics)
        copy._open_counter = self._open_counter
        copy._open_count = dict(self._open_count)
        copy._last_open_index = dict(self._last_open_index)
        return copy

    def merge_from(self, child: "LifetimeDistanceCalculator", since: int = 0) -> None:
        """Absorb a child stream's history on process exit (section 4.7).

        *since* is the child's open counter at fork time; entries at or
        below it were inherited from the parent and need no merging.
        The parent's counter advances by the number of opens the child
        performed, and the child's post-fork opens are mapped onto the
        parent's timeline at their relative positions.  This lets SEER
        "detect extended relationships between files referenced by a
        process and by its parent" while still aging the parent's own
        older references correctly.  Open counts do not transfer: the
        kernel drops a dead child's descriptors.
        """
        new_opens = max(0, child._open_counter - since)
        base = self._open_counter
        self._open_counter = base + new_opens
        for file, child_index in child._last_open_index.items():
            if child_index <= since:
                continue
            mapped = base + (child_index - since)
            if mapped > self._last_open_index.get(file, -1):
                self._last_open_index[file] = mapped

    def process_events(self, events: Iterable[Reference]) -> List[Tuple[str, str, int]]:
        """Run a whole event stream; convenience for tests and replay."""
        out: List[Tuple[str, str, int]] = []
        for event in events:
            if event.kind is RefKind.OPEN:
                out.extend(self.open(event.file))
            else:
                self.close(event.file)
        return out


# ----------------------------------------------------------------------
# Data reduction: per-file-pair summaries (section 3.1.2)
# ----------------------------------------------------------------------
@dataclass
class DistanceSummary:
    """Online summary of the distances observed for one file pair.

    The paper first tried the arithmetic mean and rejected it: three
    observations of 1, 1, 1498 average to 500, yet indicate a far
    closer relationship than a constant 500.  The geometric mean gives
    small values more importance.  Distances of zero are handled by
    averaging ``log(1 + d)`` and inverting, which preserves ordering
    and maps all-zero observations to zero.
    """

    count: int = 0
    log_sum: float = 0.0
    linear_sum: float = 0.0
    last_update: int = 0   # correlator reference counter at last update
    # Computed means are cached until the next add(): neighbor-table
    # victim selection and nearest() queries read means far more often
    # than observations arrive, and expm1/log1p dominate otherwise.
    _geometric_cache: Optional[float] = field(
        default=None, repr=False, compare=False)
    _arithmetic_cache: Optional[float] = field(
        default=None, repr=False, compare=False)

    def add(self, distance: float, now: int = 0) -> None:
        if distance < 0:
            raise ValueError(f"negative semantic distance: {distance}")
        self.count += 1
        self.log_sum += math.log1p(distance)
        self.linear_sum += distance
        self.last_update = now
        self._geometric_cache = None
        self._arithmetic_cache = None

    def geometric_mean(self) -> float:
        cached = self._geometric_cache
        if cached is None:
            if self.count == 0:
                cached = math.inf
            else:
                cached = math.expm1(self.log_sum / self.count)
            self._geometric_cache = cached
        return cached

    def arithmetic_mean(self) -> float:
        cached = self._arithmetic_cache
        if cached is None:
            if self.count == 0:
                cached = math.inf
            else:
                cached = self.linear_sum / self.count
            self._arithmetic_cache = cached
        return cached

    def mean(self, geometric: bool = True) -> float:
        return self.geometric_mean() if geometric else self.arithmetic_mean()
