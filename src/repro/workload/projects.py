"""Project synthesis and project-level activities.

A *project* is the unit SEER is supposed to discover: a group of files
the user works on together.  Each project type knows how to build its
file tree on the simulated filesystem and how to emit realistic
system-call traffic for one burst of work, driving the kernel exactly
like the corresponding real programs would (editors that scan
directories for completion, compilers that hold the source open while
reading headers, make stat-ing targets before opening sources...).

Every file carries a :class:`FileRole`, which the live simulator maps
to the paper's miss-severity scale (section 4.4): losing a PRIMARY
file changes the task (severity 1), an AUXILIARY file modifies
activity within the task (2), an INFORMATIONAL file causes little
trouble (3), and a PRELOAD file none at all (4).
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional, Sequence

from repro.fs import FileSystem
from repro.kernel import Kernel
from repro.kernel.process import Process
from repro.workload.sizes import FileSizeModel


class FileRole(enum.Enum):
    STARTUP = "startup"            # severity 0 if missing
    PRIMARY = "primary"            # severity 1
    AUXILIARY = "auxiliary"        # severity 2
    INFORMATIONAL = "informational"  # severity 3
    PRELOAD = "preload"            # severity 4
    TOOL = "tool"                  # binaries/libraries: always hoarded
                                   # in practice via the 1 % rule


# ----------------------------------------------------------------------
# the system tree shared by all projects
# ----------------------------------------------------------------------
SHARED_LIBRARY = "/lib/libc.so"
EDITOR = "/bin/vi"
COMPILER = "/bin/cc"
MAKE = "/bin/make"
LINKER = "/bin/ld"
SHELL = "/bin/sh"
MAILER = "/bin/mail"
LATEX = "/bin/latex"
FIND = "/bin/find"
GREP = "/bin/grep"


def build_system_tree(fs: FileSystem, sizes: FileSizeModel) -> Dict[str, FileRole]:
    """Create /bin, /lib, /etc, /dev and the user's dot-files.

    Returns the role map for the files created.
    """
    roles: Dict[str, FileRole] = {}
    for directory in ("/bin", "/lib", "/etc", "/dev", "/tmp", "/home/u"):
        fs.mkdir(directory, parents=True)
    for program in (EDITOR, COMPILER, MAKE, LINKER, SHELL, MAILER, LATEX,
                    FIND, GREP):
        fs.create(program, size=sizes.binary())
        roles[program] = FileRole.TOOL
    fs.create(SHARED_LIBRARY, size=sizes.shared_library())
    roles[SHARED_LIBRARY] = FileRole.TOOL
    for name in ("passwd", "hosts", "fstab"):
        fs.create(f"/etc/{name}", size=200)
        roles[f"/etc/{name}"] = FileRole.STARTUP
    from repro.fs import FileKind
    fs.create("/dev/console", kind=FileKind.DEVICE)
    fs.create("/dev/tty0", kind=FileKind.DEVICE)
    for dotfile in (".login", ".profile", ".exrc"):
        fs.create(f"/home/u/{dotfile}", size=300)
        roles[f"/home/u/{dotfile}"] = FileRole.STARTUP
    return roles


def spawn_program(kernel: Kernel, parent: Process, program: str) -> Process:
    """fork + exec + the shared-library open every dynamic program does.

    The libc open is what drives the 1 % frequently-referenced-file
    machinery of section 4.2.
    """
    child = kernel.spawn(parent, program)
    fd = kernel.open(child, SHARED_LIBRARY)
    if fd >= 0:
        kernel.close(child, fd)
    return child


# ----------------------------------------------------------------------
# project types
# ----------------------------------------------------------------------
class Project:
    """Base class: a named group of files plus work activities."""

    def __init__(self, name: str, root: str) -> None:
        self.name = name
        self.root = root
        self.roles: Dict[str, FileRole] = {}

    def files(self) -> List[str]:
        return sorted(self.roles)

    def role_of(self, path: str) -> Optional[FileRole]:
        return self.roles.get(path)

    def build(self, fs: FileSystem, sizes: FileSizeModel) -> None:
        raise NotImplementedError

    def work(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        """Emit one burst of work on this project."""
        raise NotImplementedError


class CProject(Project):
    """A C program: sources, headers, Makefile, objects, binary.

    Work alternates edit cycles (editor scans the directory for
    completion, opens one source, writes it) and build cycles (make
    stats targets, cc compiles each stale source holding it open while
    reading its headers, ld links).
    """

    def __init__(self, name: str, root: str, n_sources: int = 4,
                 n_headers: int = 3) -> None:
        super().__init__(name, root)
        self.n_sources = n_sources
        self.n_headers = n_headers
        self.sources: List[str] = []
        self.headers: List[str] = []
        self.objects: List[str] = []
        self.makefile = f"{root}/Makefile"
        self.binary = f"{root}/{name}"
        self._dirty: List[str] = []

    def build(self, fs: FileSystem, sizes: FileSizeModel) -> None:
        fs.mkdir(self.root, parents=True)
        self.headers = [f"{self.root}/{self.name}{i}.h"
                        for i in range(self.n_headers)]
        for header in self.headers:
            fs.create(header, size=sizes.header_file(), content="#define X 1\n")
            self.roles[header] = FileRole.PRIMARY
        self.sources = [f"{self.root}/{self.name}{i}.c"
                        for i in range(self.n_sources)]
        for index, source in enumerate(self.sources):
            includes = "".join(
                f'#include "{h.rsplit("/", 1)[1]}"\n'
                for h in self.headers[: 1 + index % self.n_headers])
            fs.create(source, size=sizes.source_file(), content=includes)
            self.roles[source] = FileRole.PRIMARY
        self.objects = [source[:-2] + ".o" for source in self.sources]
        source_names = " ".join(s.rsplit("/", 1)[1] for s in self.sources)
        fs.create(self.makefile, content=(
            f"SRCS = {source_names}\n"
            f"{self.name}: $(SRCS)\n\tcc -o {self.name} $(SRCS)\n"))
        self.roles[self.makefile] = FileRole.AUXILIARY
        fs.create(self.binary, size=sizes.binary())
        self.roles[self.binary] = FileRole.AUXILIARY
        self._dirty = list(self.sources)

    # -- activities ----------------------------------------------------
    def work(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        if rng.random() < 0.8:
            self.edit_cycle(kernel, shell, rng)
        else:
            self.build_cycle(kernel, shell, rng)

    def edit_cycle(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        editor = spawn_program(kernel, shell, EDITOR)
        kernel.chdir(editor, self.root)
        if rng.random() < 0.3:
            kernel.scandir(editor, self.root)   # filename completion
        target = rng.choice(self.sources + self.headers)
        fd = kernel.open(editor, target, write=True)
        if fd >= 0:
            kernel.write(editor, fd)
            kernel.close(editor, fd)
        if target in self.sources and target not in self._dirty:
            self._dirty.append(target)
        # Editing means reading context: a header here, a sibling
        # source there.
        consulted = rng.sample(self.sources + self.headers,
                               min(len(self.sources + self.headers),
                                   rng.randrange(1, 4)))
        for path in consulted:
            if path != target:
                fd = kernel.open(editor, path)
                if fd >= 0:
                    kernel.close(editor, fd)
        kernel.clock.advance(rng.uniform(60, 600))   # humans edit slowly
        kernel.exit(editor)

    def build_cycle(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        make = spawn_program(kernel, shell, MAKE)
        kernel.chdir(make, self.root)
        fd = kernel.open(make, self.makefile)
        if fd >= 0:
            kernel.close(make, fd)
        for source in self.sources:
            kernel.stat(make, source)
            kernel.stat(make, source[:-2] + ".o")
        if not self._dirty:
            # "Nothing to be done": make examined attributes only.
            kernel.clock.advance(rng.uniform(1, 5))
            kernel.exit(make)
            return
        recompile = list(self._dirty)
        for source in recompile:
            compiler = spawn_program(kernel, make, COMPILER)
            kernel.chdir(compiler, self.root)
            source_fd = kernel.open(compiler, source)
            for header in self.headers:
                header_fd = kernel.open(compiler, header)
                if header_fd >= 0:
                    kernel.close(compiler, header_fd)
            # Compilers write a temp file, then rename it over the .o.
            temp = f"/tmp/cc{kernel.clock.now:.0f}{rng.randrange(10_000)}.o"
            temp_fd = kernel.open(compiler, temp, create=True,
                                  size=max(64, kernel.fs.size_of(source)))
            if temp_fd >= 0:
                kernel.close(compiler, temp_fd)
            kernel.rename(compiler, temp, source[:-2] + ".o")
            if source_fd >= 0:
                kernel.close(compiler, source_fd)
            kernel.clock.advance(rng.uniform(1, 10))
            kernel.exit(compiler)
        linker = spawn_program(kernel, make, LINKER)
        kernel.chdir(linker, self.root)
        for obj in self.objects:
            fd = kernel.open(linker, obj)
            if fd >= 0:
                kernel.close(linker, fd)
        fd = kernel.open(linker, self.binary, create=True,
                         size=kernel.fs.size_of(self.binary) or 40_000)
        if fd >= 0:
            kernel.close(linker, fd)
        kernel.exit(linker)
        kernel.clock.advance(rng.uniform(5, 30))
        kernel.exit(make)
        self._dirty = []


class DocumentProject(Project):
    """A paper/report: .tex sources, a .bib, figures, generated output."""

    def __init__(self, name: str, root: str, n_sections: int = 3,
                 n_figures: int = 2) -> None:
        super().__init__(name, root)
        self.n_sections = n_sections
        self.n_figures = n_figures
        self.sections: List[str] = []
        self.figures: List[str] = []
        self.bibliography = f"{root}/{name}.bib"
        self.master = f"{root}/{name}.tex"

    def build(self, fs: FileSystem, sizes: FileSizeModel) -> None:
        fs.mkdir(self.root, parents=True)
        fs.create(self.master, size=sizes.document())
        self.roles[self.master] = FileRole.PRIMARY
        self.sections = [f"{self.root}/section{i}.tex"
                         for i in range(self.n_sections)]
        for section in self.sections:
            fs.create(section, size=sizes.document())
            self.roles[section] = FileRole.PRIMARY
        fs.create(self.bibliography, size=sizes.document(),
                  content="@article{x}\n")
        self.roles[self.bibliography] = FileRole.AUXILIARY
        self.figures = [f"{self.root}/fig{i}.ps" for i in range(self.n_figures)]
        for figure in self.figures:
            fs.create(figure, size=sizes.document())
            self.roles[figure] = FileRole.INFORMATIONAL

    def work(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        if rng.random() < 0.7:
            self.edit_cycle(kernel, shell, rng)
        else:
            self.format_cycle(kernel, shell, rng)

    def edit_cycle(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        editor = spawn_program(kernel, shell, EDITOR)
        kernel.chdir(editor, self.root)
        target = rng.choice([self.master] + self.sections)
        fd = kernel.open(editor, target, write=True)
        if fd >= 0:
            kernel.write(editor, fd)
            kernel.close(editor, fd)
        if rng.random() < 0.3:
            fd = kernel.open(editor, self.bibliography)
            if fd >= 0:
                kernel.close(editor, fd)
        kernel.clock.advance(rng.uniform(120, 900))
        kernel.exit(editor)

    def format_cycle(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        latex = spawn_program(kernel, shell, LATEX)
        kernel.chdir(latex, self.root)
        master_fd = kernel.open(latex, self.master)
        for path in self.sections + [self.bibliography] + self.figures:
            fd = kernel.open(latex, path)
            if fd >= 0:
                kernel.close(latex, fd)
        aux = f"{self.root}/{self.name}.aux"
        fd = kernel.open(latex, aux, create=True, size=500)
        if fd >= 0:
            kernel.close(latex, fd)
        self.roles.setdefault(aux, FileRole.PRELOAD)
        dvi = f"{self.root}/{self.name}.dvi"
        fd = kernel.open(latex, dvi, create=True, size=5_000)
        if fd >= 0:
            kernel.close(latex, fd)
        self.roles.setdefault(dvi, FileRole.PRELOAD)
        if master_fd >= 0:
            kernel.close(latex, master_fd)
        kernel.clock.advance(rng.uniform(5, 30))
        kernel.exit(latex)


class ArchiveProject(Project):
    """Dormant bulk: an old release tree, downloaded documentation, a
    finished project kept around "just in case".

    Most of a real disk is this (section 5.2.1: "only a small fraction
    of all files are actually needed by the user on any given day").
    Archives are only touched by the occasional browse and by find(1)
    scans, so they pad LRU history without entering any working set.
    """

    def __init__(self, name: str, root: str, n_files: int = 40) -> None:
        super().__init__(name, root)
        self.n_files = n_files

    def build(self, fs: FileSystem, sizes: FileSizeModel) -> None:
        fs.mkdir(self.root, parents=True)
        for index in range(self.n_files):
            subdir = f"{self.root}/part{index // 10}"
            if not fs.exists(subdir):
                fs.mkdir(subdir)
            path = f"{subdir}/file{index}.dat"
            fs.create(path, size=sizes.document())
            self.roles[path] = FileRole.INFORMATIONAL

    def work(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        """A browse: read one or two archive files, then move on."""
        files = self.files()
        for path in rng.sample(files, min(len(files), rng.randrange(1, 3))):
            fd = kernel.open(shell, path)
            if fd >= 0:
                kernel.close(shell, fd)


class MailProject(Project):
    """The user's mail: folders read while other work is in flight."""

    def __init__(self, name: str = "mail", root: str = "/home/u/Mail",
                 n_folders: int = 4) -> None:
        super().__init__(name, root)
        self.n_folders = n_folders
        self.inbox = f"{root}/inbox"
        self.folders: List[str] = []

    def build(self, fs: FileSystem, sizes: FileSizeModel) -> None:
        fs.mkdir(self.root, parents=True)
        fs.create(self.inbox, size=sizes.mail_folder())
        self.roles[self.inbox] = FileRole.AUXILIARY
        self.folders = [f"{self.root}/folder{i}" for i in range(self.n_folders)]
        for folder in self.folders:
            fs.create(folder, size=sizes.mail_folder())
            self.roles[folder] = FileRole.INFORMATIONAL

    def work(self, kernel: Kernel, shell: Process, rng: random.Random) -> None:
        mailer = spawn_program(kernel, shell, MAILER)
        kernel.chdir(mailer, self.root)
        fd = kernel.open(mailer, self.inbox, write=rng.random() < 0.5)
        if fd >= 0:
            kernel.close(mailer, fd)
        if rng.random() < 0.4:
            folder = rng.choice(self.folders)
            fd = kernel.open(mailer, folder)
            if fd >= 0:
                kernel.close(mailer, fd)
        kernel.clock.advance(rng.uniform(30, 300))
        kernel.exit(mailer)
