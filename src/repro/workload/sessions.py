"""Connectivity schedules: connected, disconnected, suspended.

The live measurements of section 5.1.1 depend on per-machine
disconnection behaviour: the number of disconnections, their duration
distribution (Table 3), suspension periods that must be discarded, and
the 15-minute squash rule for brief disconnections/reconnections.
This module synthesizes such schedules from per-machine statistics.

Durations are drawn from a lognormal distribution fitted to the
published mean and median (mean = exp(mu + sigma^2/2),
median = exp(mu)), clamped to the published maximum and the 15-minute
minimum the squash rule induces.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

HOUR = 3600.0
DAY = 24 * HOUR


class PeriodKind(enum.Enum):
    CONNECTED = "connected"
    DISCONNECTED = "disconnected"
    SUSPENDED = "suspended"   # always nested inside a disconnection


@dataclass(frozen=True)
class Period:
    kind: PeriodKind
    start: float   # seconds
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def duration_hours(self) -> float:
        return self.duration / HOUR


@dataclass
class Schedule:
    """A machine's full connectivity timeline."""

    periods: List[Period] = field(default_factory=list)

    def disconnections(self) -> List[Period]:
        return [p for p in self.periods if p.kind is PeriodKind.DISCONNECTED]

    def connected_periods(self) -> List[Period]:
        return [p for p in self.periods if p.kind is PeriodKind.CONNECTED]

    def suspensions(self) -> List[Period]:
        return [p for p in self.periods if p.kind is PeriodKind.SUSPENDED]

    @property
    def total_duration(self) -> float:
        if not self.periods:
            return 0.0
        return max(p.end for p in self.periods)

    def active_disconnected_time(self, disconnection: Period) -> float:
        """Disconnected wall time minus nested suspensions; misses can
        only happen (and time-to-first-miss only accrues) while the
        machine is actively used (section 5.1.1)."""
        suspended = sum(
            min(s.end, disconnection.end) - max(s.start, disconnection.start)
            for s in self.suspensions()
            if s.start < disconnection.end and s.end > disconnection.start)
        return disconnection.duration - suspended


def fit_lognormal(mean: float, median: float) -> Tuple[float, float]:
    """Fit (mu, sigma) from a published mean and median.

    median = exp(mu); mean = exp(mu + sigma^2 / 2).
    Degenerate inputs (mean <= median) collapse to sigma = 0.
    """
    if median <= 0 or mean <= 0:
        raise ValueError("mean and median must be positive")
    mu = math.log(median)
    ratio = mean / median
    sigma = math.sqrt(2 * math.log(ratio)) if ratio > 1.0 else 0.0
    return mu, sigma


def clamp_disconnection_stats(mean_hours: float, median_hours: float,
                              max_hours: float,
                              minimum_hours: float = 0.25
                              ) -> Tuple[float, float, float, bool]:
    """Force a (mean, median, max) duration tuple into fit validity.

    :func:`fit_lognormal` requires ``0 < median <= mean`` and the clamp
    loop in :func:`generate_schedule` assumes ``mean <= max``.  Table 3
    satisfies both by construction, but *sampled* tuples -- the
    population synthesizer draws each statistic from its own fitted
    distribution -- can land anywhere, and an invalid draw must not
    raise in the middle of a thousand-machine grid.  The repair is
    monotone: every value is floored at *minimum_hours*, the median is
    pulled down to the mean, and the max is pulled up to the mean.

    Returns the repaired ``(mean, median, max)`` plus a flag saying
    whether anything had to change (the population sampler counts
    these as ``population.stats_clamped``).
    """
    floor = max(minimum_hours, 1e-6)
    mean = mean_hours if mean_hours > floor else floor
    median = median_hours if median_hours > floor else floor
    maximum = max_hours if max_hours > floor else floor
    if median > mean:
        median = mean
    if maximum < mean:
        maximum = mean
    clamped = (mean != mean_hours or median != median_hours or
               maximum != max_hours)
    return mean, median, maximum, clamped


def generate_schedule(n_disconnections: int, mean_hours: float,
                      median_hours: float, max_hours: float,
                      days: float, rng: Optional[random.Random] = None,
                      suspension_fraction: float = 0.3,
                      minimum_hours: float = 0.25) -> Schedule:
    """Build a schedule with *n_disconnections* over *days* days.

    Disconnection durations follow the fitted lognormal, clamped to
    [minimum, max].  A fraction of each long disconnection is spent
    suspended (overnight lid-closed time).  Connected gaps fill the
    remaining span evenly with jitter.
    """
    rng = rng if rng is not None else random.Random(0)
    if n_disconnections <= 0:
        # A machine that never disconnected (population sampling draws
        # such profiles; Table 3 itself has none).  The whole span is
        # one connected period -- without this the duration-rescale
        # loop below divides by len(durations) == 0.
        return Schedule(periods=[Period(PeriodKind.CONNECTED, 0.0,
                                        days * DAY)])
    mu, sigma = fit_lognormal(mean_hours, median_hours)
    durations = []
    for _ in range(n_disconnections):
        draw = math.exp(rng.gauss(mu, sigma)) if sigma > 0 else median_hours
        durations.append(min(max(draw, minimum_hours), max_hours))
    # Clamping to [minimum, max] biases the sample mean below the
    # published mean; rescale (and re-clamp) a few times so Table 3's
    # means survive the clamp.
    for _ in range(4):
        actual = sum(durations) / len(durations)
        if actual <= 0 or abs(actual - mean_hours) / mean_hours < 0.02:
            break
        factor = mean_hours / actual
        durations = [min(max(d * factor, minimum_hours), max_hours)
                     for d in durations]

    total_disconnected = sum(durations) * HOUR
    total_span = days * DAY
    total_connected = max(total_span - total_disconnected,
                          n_disconnections * HOUR)
    base_gap = total_connected / (n_disconnections + 1)

    periods: List[Period] = []
    clock = 0.0
    for duration_hours in durations:
        gap = base_gap * rng.uniform(0.5, 1.5)
        periods.append(Period(PeriodKind.CONNECTED, clock, clock + gap))
        clock += gap
        disconnect_end = clock + duration_hours * HOUR
        periods.append(Period(PeriodKind.DISCONNECTED, clock, disconnect_end))
        # Long disconnections include suspended stretches.
        if duration_hours > 8.0 and suspension_fraction > 0:
            suspended = duration_hours * HOUR * suspension_fraction
            mid = clock + (duration_hours * HOUR - suspended) / 2
            periods.append(Period(PeriodKind.SUSPENDED, mid, mid + suspended))
        clock = disconnect_end
    periods.append(Period(PeriodKind.CONNECTED, clock, clock + base_gap))
    return Schedule(periods=periods)


def squash_brief_periods(schedule: Schedule,
                         minimum_seconds: float = 15 * 60.0) -> Schedule:
    """Post-process a raw schedule per section 5.1.1.

    Disconnections shorter than the minimum are dropped (misses would
    not be bothersome); reconnections shorter than the minimum are
    merged into the surrounding disconnections (brief reconnections to
    transfer mail or service a miss), which reduces the disconnection
    count and raises the mean duration -- a perturbation the paper
    notes is detrimental to SEER.

    The result keeps three invariants the simulators depend on
    (pinned by a hypothesis property in ``tests/workload``):

    * top-level periods alternate kinds and tile the original timeline
      exactly (suspensions are nested, not top-level);
    * no surviving disconnection is shorter than the minimum -- a brief
      one at the head of the schedule, with no predecessor to merge
      into, simply becomes connected time;
    * every surviving suspension lies inside a surviving disconnection.
      A suspension whose disconnection was dropped or relabelled is
      dropped with it instead of being orphaned inside connected time
      (where it would also wedge between two connected periods and
      block their merge).
    """
    suspensions = [p for p in schedule.periods
                   if p.kind is PeriodKind.SUSPENDED]
    merged: List[Period] = []
    for period in schedule.periods:
        if period.kind is PeriodKind.SUSPENDED:
            continue
        if period.kind is PeriodKind.DISCONNECTED and \
                period.duration < minimum_seconds:
            period = Period(PeriodKind.CONNECTED, period.start, period.end)
        if period.kind is PeriodKind.CONNECTED and \
                period.duration < minimum_seconds and merged and \
                merged[-1].kind is PeriodKind.DISCONNECTED:
            period = Period(PeriodKind.DISCONNECTED, period.start, period.end)
        if merged and merged[-1].kind is period.kind:
            merged[-1] = Period(period.kind, merged[-1].start, period.end)
        else:
            merged.append(period)
    # Re-nest the suspensions that still fall inside a disconnection,
    # each immediately after its containing period (the layout
    # generate_schedule produces).
    result: List[Period] = []
    for period in merged:
        result.append(period)
        if period.kind is PeriodKind.DISCONNECTED:
            result.extend(s for s in suspensions
                          if period.start <= s.start and
                          s.end <= period.end)
    return Schedule(periods=result)
