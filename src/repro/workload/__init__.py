"""Synthetic user workloads.

The paper's evaluation rests on traces of nine real laptop users in a
software-development environment (machines A-I, section 5.1.1).  This
package is the substitute: a parameterised user-behaviour model that
generates system-call traffic with the structures SEER's algorithms
care about -- projects with internal locality, edit/compile cycles,
attention shifts, mail reading interleaved with compilations, find(1)
scans, getcwd calls, temporary files, shared libraries opened by every
program -- plus per-machine disconnection schedules calibrated to
Table 3's statistics.
"""

from repro.workload.generator import GeneratedTrace, UserModel, generate_machine_trace
from repro.workload.machines import MACHINES, MachineProfile, machine_profile
from repro.workload.population import (
    PopulationSpec,
    SampleStats,
    is_population_machine,
    machine_seed,
    parse_population_machine,
    population_machine_name,
    resolve_profile,
    sample_population,
    sample_profile,
)
from repro.workload.projects import (
    CProject,
    DocumentProject,
    FileRole,
    MailProject,
    Project,
    build_system_tree,
)
from repro.workload.sessions import Period, PeriodKind, Schedule, generate_schedule
from repro.workload.sizes import GEOMETRIC_P, FileSizeModel

__all__ = [
    "CProject",
    "DocumentProject",
    "FileRole",
    "FileSizeModel",
    "GEOMETRIC_P",
    "GeneratedTrace",
    "MACHINES",
    "MachineProfile",
    "MailProject",
    "Period",
    "PeriodKind",
    "PopulationSpec",
    "Project",
    "SampleStats",
    "Schedule",
    "UserModel",
    "build_system_tree",
    "generate_machine_trace",
    "generate_schedule",
    "is_population_machine",
    "machine_profile",
    "machine_seed",
    "parse_population_machine",
    "population_machine_name",
    "resolve_profile",
    "sample_population",
    "sample_profile",
]
