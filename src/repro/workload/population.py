"""Fleet-scale population synthesis: sampled machine profiles.

The paper's evaluation is nine hand-calibrated machines (Table 3).
This module scales that to generated populations of thousands of
synthetic users so SEER-vs-baseline claims become population-level
curves with confidence bands instead of per-machine anecdotes
(ROADMAP item 5).

The sampling model is deliberately simple and fully inspectable:

* every numeric profile field gets a **lognormal fitted to the nine
  published values** (log-space mean and standard deviation), sampled
  independently and clamped to a stretch of the observed range so one
  wild draw cannot produce a pathological machine;
* the disconnection-duration triple (mean, median, max) is sampled as
  ``median x mean/median ratio x max/mean ratio`` so the three stay
  plausibly ordered, then forced into fit validity by
  :func:`repro.workload.sessions.clamp_disconnection_stats` -- sampling
  noise must never raise in the middle of a thousand-machine grid;
* the disconnection *count* is a rate (disconnections per measured
  day) times the sampled measurement length, so lightly-measured
  machines can legitimately round to **zero disconnections** (the
  regression class ``generate_schedule`` now handles);
* hoard budget and investigator use follow Table 3/4's empirical
  mixtures (one machine in nine ran a 98 MB hoard; three of nine ran
  investigators).

Determinism: a machine is a pure function of ``(population_seed,
index)``.  The per-machine seed is derived with :func:`zlib.crc32`
(never the salted builtin ``hash`` -- the RL003 incident class), so
profiles and traces are byte-identical across the parallel runner's
worker processes, checkpoint/resume boundaries and hosts.  A machine's
*name* encodes the pair (``pop7-000042``), so a worker can rebuild the
profile from the name alone -- exactly how :class:`ShardSpec` cells
rebuild traces.
"""

from __future__ import annotations

import math
import random
import re
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.workload.machines import MACHINES, MB, MachineProfile
from repro.workload.machines import machine_profile as _table3_profile
from repro.workload.sessions import clamp_disconnection_stats

__all__ = [
    "FittedLognormal",
    "PopulationSpec",
    "SampleStats",
    "is_population_machine",
    "iter_population",
    "machine_seed",
    "parse_population_machine",
    "population_machine_name",
    "resolve_profile",
    "sample_population",
    "sample_profile",
]

_NAME_PATTERN = re.compile(r"^pop(\d+)-(\d+)$")

#: Sampled values may stray this factor beyond the observed Table 3
#: range before being clamped back; it keeps the tails honest without
#: letting a 6-sigma draw synthesize a machine no study ever saw.
_RANGE_STRETCH = 1.5


@dataclass(frozen=True)
class FittedLognormal:
    """A lognormal fitted to one Table 3 column, with range clamps."""

    mu: float
    sigma: float
    minimum: float
    maximum: float

    @classmethod
    def fit(cls, values: Tuple[float, ...],
            stretch: float = _RANGE_STRETCH) -> "FittedLognormal":
        logs = [math.log(v) for v in values]
        mu = sum(logs) / len(logs)
        if len(logs) > 1:
            variance = sum((v - mu) ** 2 for v in logs) / (len(logs) - 1)
        else:
            variance = 0.0
        return cls(mu=mu, sigma=math.sqrt(variance),
                   minimum=min(values) / stretch,
                   maximum=max(values) * stretch)

    def sample(self, rng: random.Random) -> float:
        draw = math.exp(rng.gauss(self.mu, self.sigma))
        return min(max(draw, self.minimum), self.maximum)


def _column(extract: "Callable[[MachineProfile], float]"
            ) -> Tuple[float, ...]:
    return tuple(extract(MACHINES[name]) for name in sorted(MACHINES))


#: Per-field distributions fitted to the nine machines of Table 3.
#: Module-level so ``docs/population.md`` can quote exact parameters
#: and tests can assert against them.
DAYS_MEASURED = FittedLognormal.fit(
    _column(lambda m: float(m.days_measured)))
DISCONNECTION_RATE = FittedLognormal.fit(
    _column(lambda m: m.n_disconnections / m.days_measured))
MEDIAN_DISCONNECTION_HOURS = FittedLognormal.fit(
    _column(lambda m: m.median_disconnection_hours))
MEAN_TO_MEDIAN_RATIO = FittedLognormal.fit(
    _column(lambda m: m.mean_disconnection_hours /
            m.median_disconnection_hours))
MAX_TO_MEAN_RATIO = FittedLognormal.fit(
    _column(lambda m: m.max_disconnection_hours /
            m.mean_disconnection_hours))
ACTIVITY = FittedLognormal.fit(_column(lambda m: m.activity))
CODE_PROJECTS = FittedLognormal.fit(
    _column(lambda m: float(m.n_code_projects)))
DOCUMENT_PROJECTS = FittedLognormal.fit(
    _column(lambda m: float(m.n_document_projects)))
ATTENTION_SHIFT_RATE = FittedLognormal.fit(
    _column(lambda m: m.attention_shift_rate))

#: Table 3's nine users were self-selected mobile users; a fleet of
#: thousands also contains laptops that essentially never leave their
#: dock.  This mixture weight gives such machines a small but real
#: presence -- their disconnection rate is divided by
#: :data:`_RARELY_DISCONNECTED_DIVISOR`, which rounds many of them to
#: zero disconnections (the ``generate_schedule`` regression class).
RARELY_DISCONNECTED_FRACTION = 0.05
_RARELY_DISCONNECTED_DIVISOR = 50.0

#: Empirical mixtures (Table 4: machine G ran a 98 MB hoard, everyone
#: else 50 MB; machines B, F and G ran investigators).
LARGE_HOARD_FRACTION = sum(
    1 for name in MACHINES if MACHINES[name].hoard_size_bytes > 50 * MB
) / len(MACHINES)
INVESTIGATOR_FRACTION = sum(
    1 for name in MACHINES if MACHINES[name].uses_investigators
) / len(MACHINES)


@dataclass(frozen=True)
class PopulationSpec:
    """One synthetic population: its size and master seed."""

    machines: int
    seed: int

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError("population needs at least one machine")
        if self.seed < 0:
            raise ValueError("population seed must be non-negative")

    def names(self) -> List[str]:
        return [population_machine_name(self.seed, index)
                for index in range(self.machines)]


@dataclass
class SampleStats:
    """What sampling a population did (mirrored into ``population.*``
    metrics by the CLI)."""

    machines: int = 0
    zero_disconnection_machines: int = 0
    stats_clamped: int = 0
    investigator_machines: int = 0


def machine_seed(population_seed: int, index: int) -> int:
    """Deterministic per-machine seed, derived via crc32 (RL003-safe:
    identical in every process, on every host)."""
    key = f"population:{population_seed}:{index}".encode("utf-8")
    return zlib.crc32(key) & 0xFFFFFFFF


def population_machine_name(population_seed: int, index: int) -> str:
    """The name that encodes a synthetic machine's full identity."""
    return f"pop{population_seed}-{index:06d}"


def parse_population_machine(name: str) -> Optional[Tuple[int, int]]:
    """``(population_seed, index)`` for a population name, else None."""
    match = _NAME_PATTERN.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def is_population_machine(name: str) -> bool:
    return parse_population_machine(name) is not None


def sample_profile(population_seed: int, index: int,
                   stats: Optional[SampleStats] = None) -> MachineProfile:
    """Sample machine *index* of the population -- a pure function of
    ``(population_seed, index)``."""
    rng = random.Random(machine_seed(population_seed, index))

    days_measured = max(7, int(round(DAYS_MEASURED.sample(rng))))
    rate = DISCONNECTION_RATE.sample(rng)
    if rng.random() < RARELY_DISCONNECTED_FRACTION:
        rate /= _RARELY_DISCONNECTED_DIVISOR
    n_disconnections = int(round(rate * days_measured))

    median = MEDIAN_DISCONNECTION_HOURS.sample(rng)
    mean = median * MEAN_TO_MEDIAN_RATIO.sample(rng)
    maximum = mean * MAX_TO_MEAN_RATIO.sample(rng)
    mean, median, maximum, clamped = clamp_disconnection_stats(
        mean, median, maximum)

    activity = min(ACTIVITY.sample(rng), 1.0)
    n_code = max(1, int(round(CODE_PROJECTS.sample(rng))))
    n_documents = max(1, int(round(DOCUMENT_PROJECTS.sample(rng))))
    attention = ATTENTION_SHIFT_RATE.sample(rng)
    hoard = 98 * MB if rng.random() < LARGE_HOARD_FRACTION else 50 * MB
    investigators = rng.random() < INVESTIGATOR_FRACTION

    if stats is not None:
        stats.machines += 1
        if n_disconnections == 0:
            stats.zero_disconnection_machines += 1
        if clamped:
            stats.stats_clamped += 1
        if investigators:
            stats.investigator_machines += 1

    return MachineProfile(
        name=population_machine_name(population_seed, index),
        days_measured=days_measured,
        n_disconnections=n_disconnections,
        mean_disconnection_hours=mean,
        median_disconnection_hours=median,
        max_disconnection_hours=maximum,
        hoard_size_bytes=hoard,
        activity=activity,
        n_code_projects=n_code,
        n_document_projects=n_documents,
        attention_shift_rate=attention,
        uses_investigators=investigators,
    )


def sample_population(spec: PopulationSpec,
                      stats: Optional[SampleStats] = None
                      ) -> List[MachineProfile]:
    """Sample the whole population, in index order."""
    return [sample_profile(spec.seed, index, stats=stats)
            for index in range(spec.machines)]


def iter_population(spec: PopulationSpec) -> Iterator[MachineProfile]:
    """Lazy variant of :func:`sample_population` for O(1)-memory scans."""
    for index in range(spec.machines):
        yield sample_profile(spec.seed, index)


def resolve_profile(machine: str) -> MachineProfile:
    """Profile for any machine name: Table 3's nine or a synthetic
    population member (``pop<seed>-<index>``).

    This is the resolver the experiment runner's workers use to
    rebuild traces from a :class:`ShardSpec`, so it must work from the
    name alone in any process.
    """
    parsed = parse_population_machine(machine)
    if parsed is not None:
        return sample_profile(parsed[0], parsed[1])
    return _table3_profile(machine)
