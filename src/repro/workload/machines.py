"""The nine machine profiles (paper Tables 3 and 4).

Each profile carries the published disconnection statistics of one
machine (count, mean/median/max duration, measurement days), its
configured hoard size (Table 4: 50 MB everywhere except G's 98 MB),
its relative activity level (traces ranged from ~40 K operations for
the least-used machines, C and H, to ~326 M for the most-used, G), and
workload-shape knobs (project counts, attention-shift rate).

Activity is expressed as work bursts per connected hour and scaled down
uniformly (the ``scale`` argument of
:func:`repro.workload.generator.generate_machine_trace`) so whole
deployments replay in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

MB = 1024 * 1024


@dataclass(frozen=True)
class MachineProfile:
    name: str
    days_measured: int
    n_disconnections: int
    mean_disconnection_hours: float
    median_disconnection_hours: float
    max_disconnection_hours: float
    hoard_size_bytes: int
    activity: float            # relative usage level (1.0 = heavy)
    n_code_projects: int
    n_document_projects: int
    attention_shift_rate: float  # probability of switching focus per burst
    uses_investigators: bool = False


# Table 3's published statistics, verbatim.
MACHINES: Dict[str, MachineProfile] = {
    "A": MachineProfile("A", 111, 38, 11.16, 3.24, 71.89, 50 * MB,
                        activity=0.4, n_code_projects=5,
                        n_document_projects=2, attention_shift_rate=0.012),
    "B": MachineProfile("B", 79, 10, 43.20, 0.57, 404.94, 50 * MB,
                        activity=0.15, n_code_projects=4,
                        n_document_projects=2, attention_shift_rate=0.010,
                        uses_investigators=True),
    "C": MachineProfile("C", 113, 75, 9.94, 1.12, 348.20, 50 * MB,
                        activity=0.1, n_code_projects=3,
                        n_document_projects=2, attention_shift_rate=0.008),
    "D": MachineProfile("D", 118, 90, 3.01, 1.38, 26.50, 50 * MB,
                        activity=0.5, n_code_projects=6,
                        n_document_projects=2, attention_shift_rate=0.014),
    "E": MachineProfile("E", 71, 25, 1.87, 0.81, 12.08, 50 * MB,
                        activity=0.15, n_code_projects=3,
                        n_document_projects=2, attention_shift_rate=0.008),
    "F": MachineProfile("F", 252, 184, 9.30, 2.00, 90.62, 50 * MB,
                        activity=1.0, n_code_projects=8,
                        n_document_projects=4, attention_shift_rate=0.020,
                        uses_investigators=True),
    "G": MachineProfile("G", 132, 107, 8.06, 1.47, 390.60, 98 * MB,
                        activity=1.0, n_code_projects=7,
                        n_document_projects=3, attention_shift_rate=0.016,
                        uses_investigators=True),
    "H": MachineProfile("H", 113, 75, 10.17, 1.12, 348.20, 50 * MB,
                        activity=0.1, n_code_projects=3,
                        n_document_projects=2, attention_shift_rate=0.008),
    "I": MachineProfile("I", 123, 116, 2.36, 0.78, 27.68, 50 * MB,
                        activity=0.6, n_code_projects=5,
                        n_document_projects=2, attention_shift_rate=0.014),
}


def machine_profile(name: str) -> MachineProfile:
    try:
        return MACHINES[name.upper()]
    except KeyError:
        raise ValueError(f"unknown machine {name!r}; choose from "
                         f"{sorted(MACHINES)}") from None
