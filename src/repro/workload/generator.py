"""The user-behaviour model and trace generation.

:class:`UserModel` drives a simulated kernel the way one user drives a
laptop: a login shell forks editors, compilers, mailers and the
occasional find(1); attention shifts move the focus between projects
(the case where LRU hoarding fails, section 6.1); mail is read while
compilations run (the simultaneous-access problem of section 4.7);
getcwd and directory scans inject the noise of section 4.1.

:func:`generate_machine_trace` wraps the model with a machine profile
and a connectivity schedule, producing a :class:`GeneratedTrace` that
the simulation harness replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.kernel import Kernel
from repro.kernel.process import Process
from repro.tracing.events import TraceRecord
from repro.workload.machines import MachineProfile
from repro.workload.projects import (
    FIND,
    GREP,
    SHELL,
    ArchiveProject,
    CProject,
    DocumentProject,
    FileRole,
    MailProject,
    Project,
    build_system_tree,
    spawn_program,
)
from repro.workload.sessions import (
    HOUR,
    Period,
    PeriodKind,
    Schedule,
    generate_schedule,
)
from repro.workload.sizes import FileSizeModel


@dataclass
class GeneratedTrace:
    """One machine's complete synthetic deployment."""

    machine: MachineProfile
    records: List[TraceRecord]
    schedule: Schedule
    roles: Dict[str, FileRole]
    kernel: Kernel
    projects: List[Project] = field(default_factory=list)
    # Generation inputs, kept so the parallel runner can rebuild this
    # trace inside a worker process from the (machine, seed, days) key.
    seed: int = 0
    days: float = 0.0

    def size_of(self, path: str) -> int:
        try:
            node = self.kernel.fs.stat(path, follow_symlinks=False)
        except Exception:
            return 0
        return 0 if node.kind.takes_no_space else node.size


class UserModel:
    """One user's activity generator."""

    def __init__(self, kernel: Kernel, projects: Sequence[Project],
                 rng: random.Random,
                 attention_shift_rate: float = 0.08,
                 mail: Optional[MailProject] = None,
                 archives: Sequence[Project] = ()) -> None:
        self.kernel = kernel
        self.projects = list(projects)
        self.archives = list(archives)
        self.rng = rng
        self.attention_shift_rate = attention_shift_rate
        self.mail = mail
        # Real users work in several terminal windows: project work,
        # mail, and utility commands run under different shells, so
        # their reference streams only mix through true concurrency,
        # not through the parent-merge of section 4.7.
        self.shell = kernel.processes.spawn(ppid=1, program="sh",
                                            uid=1000, cwd="/home/u")
        self.mail_shell = kernel.processes.spawn(ppid=1, program="sh",
                                                 uid=1000, cwd="/home/u")
        self.utility_shell = kernel.processes.spawn(ppid=1, program="sh",
                                                    uid=1000, cwd="/home/u")
        # Zipf-ish focus weights: the first projects dominate.
        self._weights = [1.0 / (rank + 1) for rank in range(len(self.projects))]
        self.focus: Project = self.projects[0] if self.projects else None
        self._last_focus = {}
        self._pending_resume = None
        self._current_archive = None
        self.bursts_emitted = 0

    # ------------------------------------------------------------------
    # activities
    # ------------------------------------------------------------------
    def login(self) -> None:
        """Session start: the shell reads the user's startup files.

        These are the rarely-accessed critical files of section 4.3
        (suspend/resume means most sessions skip this)."""
        for dotfile in ("/home/u/.login", "/home/u/.profile"):
            fd = self.kernel.open(self.shell, dotfile)
            if fd >= 0:
                self.kernel.close(self.shell, fd)

    def maybe_shift_attention(self) -> bool:
        """Move focus to another project.

        Sometimes the user bounces among the currently-hot projects
        (Zipf-weighted); sometimes a deadline or request *resumes* a
        long-dormant project -- the case where LRU hoarding fails,
        because nothing of that project is recent (section 6.1).
        """
        if len(self.projects) < 2:
            return False
        if self.rng.random() >= self.attention_shift_rate:
            return False
        others = [p for p in self.projects if p is not self.focus]
        if self.rng.random() < 0.4:
            # Deep resume: the least recently focused project.  People
            # decide before they dive: the user skims the project now
            # (a preview burst) and starts real work a day or so later.
            project = min(others, key=lambda p: self._last_focus.get(p.name, 0))
            self._preview(project)
            self._pending_resume = (project,
                                    self.bursts_emitted + self.rng.randrange(8, 30))
            return False
        weights = [self._weights[self.projects.index(p)] for p in others]
        self.focus = self.rng.choices(others, weights=weights)[0]
        self._last_focus[self.focus.name] = self.bursts_emitted
        return True

    def _preview(self, project: Project) -> None:
        """Skim a dormant project: list it, read a few entry points."""
        self.kernel.scandir(self.shell, project.root)
        files = project.files()
        for path in files[: min(3, len(files))]:
            fd = self.kernel.open(self.shell, path)
            if fd >= 0:
                self.kernel.close(self.shell, fd)

    def _maybe_start_pending_resume(self) -> None:
        if self._pending_resume is None:
            return
        project, when = self._pending_resume
        if self.bursts_emitted >= when:
            self._pending_resume = None
            self.focus = project
            self._last_focus[project.name] = self.bursts_emitted

    def run_find(self) -> None:
        """find(1): the canonical meaningless process (section 4.1)."""
        find = spawn_program(self.kernel, self.utility_shell, FIND)
        queue = ["/home/u"]
        visited = 0
        while queue and visited < 80:
            directory = queue.pop()
            visited += 1
            names = self.kernel.scandir(find, directory)
            for name in names:
                path = f"{directory}/{name}" if directory != "/" else f"/{name}"
                if self.kernel.fs.is_directory(path):
                    queue.append(path)
                else:
                    self.kernel.stat(find, path)
        self.kernel.exit(find)

    def run_grep(self) -> None:
        """grep over the focus project: touches everything it learns
        about, so the threshold heuristic eventually mutes it too."""
        if self.focus is None:
            return
        grep = spawn_program(self.kernel, self.utility_shell, GREP)
        self.kernel.chdir(grep, self.focus.root)
        names = self.kernel.scandir(grep, self.focus.root)
        for name in names:
            fd = self.kernel.open(grep, name)
            if fd >= 0:
                self.kernel.close(grep, fd)
        self.kernel.exit(grep)

    def run_getcwd(self) -> None:
        self.kernel.chdir(self.shell, self.focus.root if self.focus else "/home/u")
        self.kernel.getcwd(self.shell)

    def browse(self) -> None:
        """A one-off look at dormant content -- usually an archive,
        sometimes an inactive project.  These incidental references pad
        an LRU list without being part of any working set."""
        if self.archives and self.rng.random() < 0.7:
            # Browsing has temporal locality of its own: people poke
            # around the same archive for a few days before moving on.
            if self._current_archive is None or self.rng.random() < 0.3:
                self._current_archive = self.rng.choice(self.archives)
            self._current_archive.work(self.kernel, self.utility_shell, self.rng)
            return
        others = [p for p in self.projects if p is not self.focus]
        if not others:
            return
        project = self.rng.choice(others)
        files = project.files()
        if not files:
            return
        fd = self.kernel.open(self.shell, self.rng.choice(files))
        if fd >= 0:
            self.kernel.close(self.shell, fd)

    def interleaved_compile_and_mail(self) -> None:
        """Section 4.7's motivating case: reading mail while a build
        runs.  The two processes' references interleave in the trace.
        """
        if self.mail is None or self.focus is None or \
                not isinstance(self.focus, CProject):
            return
        project = self.focus
        make = spawn_program(self.kernel, self.shell, "/bin/make")
        self.kernel.chdir(make, project.root)
        mailer = spawn_program(self.kernel, self.mail_shell, "/bin/mail")
        fd_makefile = self.kernel.open(make, project.makefile)
        fd_inbox = self.kernel.open(mailer, self.mail.inbox)
        for source in project.sources:
            self.kernel.stat(make, source)
            if self.rng.random() < 0.5 and self.mail.folders:
                folder_fd = self.kernel.open(
                    mailer, self.rng.choice(self.mail.folders))
                if folder_fd >= 0:
                    self.kernel.close(mailer, folder_fd)
            source_fd = self.kernel.open(make, source)
            if source_fd >= 0:
                self.kernel.close(make, source_fd)
        if fd_inbox >= 0:
            self.kernel.close(mailer, fd_inbox)
        if fd_makefile >= 0:
            self.kernel.close(make, fd_makefile)
        self.kernel.exit(mailer)
        self.kernel.exit(make)
        self.kernel.clock.advance(self.rng.uniform(30, 120))

    # ------------------------------------------------------------------
    # the burst loop
    # ------------------------------------------------------------------
    def burst(self) -> None:
        """One unit of user activity."""
        self.bursts_emitted += 1
        self._maybe_start_pending_resume()
        self.maybe_shift_attention()
        roll = self.rng.random()
        if roll < 0.62 and self.focus is not None:
            self.focus.work(self.kernel, self.shell, self.rng)
        elif roll < 0.77 and self.mail is not None:
            self.mail.work(self.kernel, self.mail_shell, self.rng)
        elif roll < 0.85:
            self.interleaved_compile_and_mail()
        elif roll < 0.89:
            self.run_grep()
        elif roll < 0.93:
            self.run_find()
        elif roll < 0.94:
            self.browse()
        else:
            self.run_getcwd()
        self.kernel.clock.advance(self.rng.uniform(30, 600))

    def run_period(self, period: Period, bursts: int) -> None:
        """Emit *bursts* activity bursts spread across *period*."""
        self.kernel.clock.advance_to(period.start)
        for _ in range(bursts):
            if self.kernel.clock.now >= period.end:
                break
            self.burst()
        self.kernel.clock.advance_to(period.end)


def build_projects(profile: MachineProfile, kernel: Kernel,
                   sizes: FileSizeModel, rng: random.Random) -> List[Project]:
    projects: List[Project] = []
    for index in range(profile.n_code_projects):
        project = CProject(f"prog{index}", f"/home/u/src/prog{index}",
                           n_sources=5 + rng.randrange(6),
                           n_headers=3 + rng.randrange(4))
        project.build(kernel.fs, sizes)
        projects.append(project)
    for index in range(profile.n_document_projects):
        project = DocumentProject(f"paper{index}", f"/home/u/doc/paper{index}",
                                  n_sections=3 + rng.randrange(4),
                                  n_figures=2 + rng.randrange(3))
        project.build(kernel.fs, sizes)
        projects.append(project)
    rng.shuffle(projects)
    return projects


def generate_machine_trace(profile: MachineProfile, seed: int = 0,
                           days: Optional[float] = None,
                           bursts_per_hour: float = 2.0,
                           suspension_fraction: float = 0.3) -> GeneratedTrace:
    """Generate one machine's trace plus its connectivity schedule.

    *days* overrides the profile's measurement length (useful to keep
    test runs fast); *bursts_per_hour* scales activity before the
    profile's own activity factor is applied.
    """
    rng = random.Random(seed * 1_000_003 + ord(profile.name[0]))
    kernel = Kernel()
    sizes = FileSizeModel(random.Random(rng.random()))
    roles = build_system_tree(kernel.fs, sizes)
    projects = build_projects(profile, kernel, sizes, rng)
    mail = MailProject()
    mail.build(kernel.fs, sizes)
    n_archives = max(3, int(round(3 + 5 * profile.activity)))
    archives = []
    for index in range(n_archives):
        archive = ArchiveProject(f"archive{index}",
                                 f"/home/u/archive/old{index}",
                                 n_files=30 + rng.randrange(30))
        archive.build(kernel.fs, sizes)
        archives.append(archive)

    records: List[TraceRecord] = []
    kernel.add_sink(records.append)

    span_days = days if days is not None else float(profile.days_measured)
    scale = span_days / float(profile.days_measured)
    # Short runs keep at least two disconnections so tests exercise
    # the disconnection machinery -- but never more than the profile
    # itself has: a sampled population machine that never disconnected
    # (profile.n_disconnections == 0) stays fully connected.
    floor = min(2, profile.n_disconnections)
    n_disconnections = max(floor, int(round(profile.n_disconnections * scale)))
    schedule = generate_schedule(
        n_disconnections=n_disconnections,
        mean_hours=profile.mean_disconnection_hours,
        median_hours=profile.median_disconnection_hours,
        max_hours=profile.max_disconnection_hours,
        days=span_days, rng=random.Random(rng.random()),
        suspension_fraction=suspension_fraction)

    user = UserModel(kernel, projects, rng,
                     attention_shift_rate=profile.attention_shift_rate,
                     mail=mail, archives=archives)
    rate = bursts_per_hour * profile.activity
    first_period = True
    for period in schedule.periods:
        if period.kind is PeriodKind.SUSPENDED:
            continue   # suspensions emit nothing
        hours = period.duration / HOUR
        bursts = max(1, int(hours * rate)) if hours > 0.05 else 0
        if first_period or rng.random() < 0.1:
            self_login_clock = kernel.clock.advance_to(period.start)
            user.login()
            first_period = False
        user.run_period(period, bursts)

    for project in projects + [mail] + archives:
        roles.update(project.roles)
    return GeneratedTrace(machine=profile, records=records,
                          schedule=schedule, roles=roles, kernel=kernel,
                          projects=projects + [mail],
                          seed=seed, days=span_days)
