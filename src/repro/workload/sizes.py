"""File-size modelling.

Section 5.1.2: "when the size of a file was not available, the size
was randomly assigned from a geometric distribution with a parameter of
0.00007, for an average file size of 14284 bytes", a value chosen from
the actual distribution of file sizes in SEER's traces.  The same
distribution seeds the synthetic filesystem, with per-category scale
factors so object files, binaries and documents look plausible.
"""

from __future__ import annotations

import random
from typing import Optional

GEOMETRIC_P = 0.00007
MEAN_FILE_SIZE = 14_284   # the paper's reported mean


class FileSizeModel:
    """Samples file sizes from the paper's geometric distribution."""

    def __init__(self, rng: Optional[random.Random] = None,
                 p: float = GEOMETRIC_P) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"geometric parameter must be in (0, 1): {p}")
        self._rng = rng if rng is not None else random.Random(0)
        self.p = p

    def sample(self) -> int:
        """One draw: the number of failures before the first success,
        plus one (so sizes are always at least a byte)."""
        # Inverse-CDF sampling of the geometric distribution.
        import math
        u = self._rng.random()
        return max(1, int(math.log1p(-u) / math.log1p(-self.p)) + 1)

    def sample_scaled(self, scale: float) -> int:
        """A draw scaled by a per-category factor (binaries are bigger
        than headers)."""
        return max(1, int(self.sample() * scale))

    def source_file(self) -> int:
        return self.sample_scaled(0.8)

    def header_file(self) -> int:
        return self.sample_scaled(0.15)

    def object_file(self) -> int:
        return self.sample_scaled(0.8)

    def binary(self) -> int:
        return self.sample_scaled(2.0)

    def shared_library(self) -> int:
        return self.sample_scaled(8.0)

    def document(self) -> int:
        return self.sample_scaled(2.5)

    def mail_folder(self) -> int:
        return self.sample_scaled(6.0)
