"""Pure path manipulation helpers with Unix semantics.

These are independent of any :class:`~repro.fs.filesystem.FileSystem`
instance; they operate on strings only.  They intentionally mirror the
small subset of ``posixpath`` that the substrate needs, implemented
locally so that the simulated filesystem never depends on host-OS path
behaviour.
"""

from __future__ import annotations

from typing import List, Tuple

SEPARATOR = "/"


def is_absolute(path: str) -> bool:
    """Return True if *path* is absolute (starts with ``/``)."""
    return path.startswith(SEPARATOR)


def split_components(path: str) -> List[str]:
    """Split *path* into its non-empty components.

    ``"/usr//bin/"`` and ``"usr/bin"`` both yield ``["usr", "bin"]``;
    ``"."`` components are dropped, ``".."`` components are preserved
    (resolution happens in :func:`normalize`).
    """
    return [part for part in path.split(SEPARATOR) if part and part != "."]


def normalize(path: str, cwd: str = SEPARATOR) -> str:
    """Return the absolute, lexically normalized form of *path*.

    Relative paths are interpreted against *cwd* (itself assumed
    absolute).  ``..`` components are resolved lexically; climbing above
    the root stays at the root, as on Unix.
    """
    if not is_absolute(path):
        path = cwd.rstrip(SEPARATOR) + SEPARATOR + path
    resolved: List[str] = []
    for part in split_components(path):
        if part == "..":
            if resolved:
                resolved.pop()
        else:
            resolved.append(part)
    return SEPARATOR + SEPARATOR.join(resolved)


def join(*parts: str) -> str:
    """Join path components; a later absolute component resets the path."""
    result = ""
    for part in parts:
        if not part:
            continue
        if is_absolute(part) or not result:
            result = part
        else:
            result = result.rstrip(SEPARATOR) + SEPARATOR + part
    return result


def dirname(path: str) -> str:
    """Return the directory portion of an absolute *path*."""
    components = split_components(path)
    if len(components) <= 1:
        return SEPARATOR
    return SEPARATOR + SEPARATOR.join(components[:-1])


def basename(path: str) -> str:
    """Return the final component of *path* (empty for the root)."""
    components = split_components(path)
    return components[-1] if components else ""


def split_extension(path: str) -> Tuple[str, str]:
    """Split ``name.ext`` into ``(name, ext)``; ext excludes the dot."""
    name = basename(path)
    if "." in name[1:]:
        stem, _, ext = name.rpartition(".")
        return stem, ext
    return name, ""


def directory_distance(path_a: str, path_b: str) -> int:
    """Paper section 3.2: distance between the *directories* of two files.

    Zero for files in the same directory, increasing for files in more
    widely separated directories.  We use the number of tree edges
    between the two containing directories (the standard tree distance):
    ``/a/b/x`` vs ``/a/b/y`` -> 0, ``/a/b/x`` vs ``/a/c/y`` -> 2.
    """
    dir_a = split_components(dirname(normalize(path_a)))
    dir_b = split_components(dirname(normalize(path_b)))
    common = 0
    for part_a, part_b in zip(dir_a, dir_b):
        if part_a != part_b:
            break
        common += 1
    return (len(dir_a) - common) + (len(dir_b) - common)
