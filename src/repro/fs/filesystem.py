"""The in-memory filesystem tree.

This is the substrate the simulated kernel (:mod:`repro.kernel`)
operates on.  It models the Unix object kinds SEER cares about
(section 4.6 of the paper): regular files, directories, symbolic
links, device nodes and pseudo-files, with sizes but (optionally)
contents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.fs import paths

_MAX_SYMLINK_DEPTH = 16


class FileSystemError(Exception):
    """Base class for filesystem failures; carries the offending path."""

    def __init__(self, path: str, message: str = ""):
        self.path = path
        super().__init__(message or f"{type(self).__name__}: {path}")


class NotFound(FileSystemError):
    """The path (or one of its parents) does not exist."""


class NotADirectory(FileSystemError):
    """A non-directory was used where a directory was required."""


class IsADirectory(FileSystemError):
    """A directory was used where a non-directory was required."""


class AlreadyExists(FileSystemError):
    """The target of a create/mkdir already exists."""


class SymlinkLoop(FileSystemError):
    """Symlink resolution exceeded the depth limit."""


class FileKind(enum.Enum):
    """The filesystem object kinds distinguished by the paper (sec. 4.6)."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    SYMLINK = "symlink"
    DEVICE = "device"
    FIFO = "fifo"
    PSEUDO = "pseudo"

    @property
    def is_plain_file(self) -> bool:
        """True for the kinds whose hoarding SEER decides itself."""
        return self is FileKind.REGULAR

    @property
    def takes_no_space(self) -> bool:
        """Non-file objects that occupy (almost) no disk space (sec. 4.6)."""
        return self in (FileKind.DEVICE, FileKind.FIFO, FileKind.PSEUDO, FileKind.SYMLINK)


@dataclass
class Inode:
    """A single filesystem object.

    ``size`` is in bytes.  ``content`` is optional small text, present
    only where an external investigator needs to parse it.  ``version``
    counts modifications and is what the replication substrates compare.
    """

    kind: FileKind
    size: int = 0
    content: Optional[str] = None
    link_target: Optional[str] = None
    children: Optional[Dict[str, "Inode"]] = None
    version: int = 0
    mtime: float = 0.0

    @classmethod
    def directory(cls) -> "Inode":
        return cls(kind=FileKind.DIRECTORY, children={})

    @classmethod
    def regular(cls, size: int = 0, content: Optional[str] = None) -> "Inode":
        if content is not None and size == 0:
            size = len(content)
        return cls(kind=FileKind.REGULAR, size=size, content=content)

    @classmethod
    def symlink(cls, target: str) -> "Inode":
        return cls(kind=FileKind.SYMLINK, link_target=target, size=len(target))

    @classmethod
    def device(cls) -> "Inode":
        return cls(kind=FileKind.DEVICE)


class FileSystem:
    """A mutable in-memory file tree with Unix path semantics.

    All paths passed to methods must be absolute; relative-path
    handling (per-process working directories) lives in the kernel
    layer, mirroring the real division of labour.
    """

    def __init__(self) -> None:
        self._root = Inode.directory()
        self._clock = 0.0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def set_time(self, now: float) -> None:
        """Record the current virtual time, stamped onto modified inodes."""
        self._clock = now

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _lookup(self, path: str, follow_symlinks: bool = True, _depth: int = 0) -> Inode:
        if _depth > _MAX_SYMLINK_DEPTH:
            raise SymlinkLoop(path)
        node = self._root
        components = paths.split_components(paths.normalize(path))
        for index, component in enumerate(components):
            if node.kind is FileKind.SYMLINK:
                node = self._lookup(node.link_target or "/", _depth=_depth + 1)
            if node.kind is not FileKind.DIRECTORY:
                raise NotADirectory("/" + "/".join(components[: index + 1]))
            assert node.children is not None
            child = node.children.get(component)
            if child is None:
                raise NotFound("/" + "/".join(components[: index + 1]))
            node = child
        if follow_symlinks and node.kind is FileKind.SYMLINK:
            return self._lookup(node.link_target or "/", _depth=_depth + 1)
        return node

    def _lookup_parent(self, path: str) -> Tuple[Inode, str]:
        normalized = paths.normalize(path)
        name = paths.basename(normalized)
        if not name:
            raise FileSystemError(path, "cannot operate on the root directory")
        parent = self._lookup(paths.dirname(normalized))
        if parent.kind is not FileKind.DIRECTORY:
            raise NotADirectory(paths.dirname(normalized))
        return parent, name

    def exists(self, path: str) -> bool:
        """Return True if *path* resolves to an object."""
        try:
            self._lookup(path)
        except FileSystemError:
            return False
        return True

    def stat(self, path: str, follow_symlinks: bool = True) -> Inode:
        """Return the inode for *path*; raises :class:`NotFound` if absent."""
        return self._lookup(path, follow_symlinks=follow_symlinks)

    def kind_of(self, path: str) -> FileKind:
        return self._lookup(path).kind

    def size_of(self, path: str) -> int:
        return self._lookup(path).size

    def is_directory(self, path: str) -> bool:
        try:
            return self._lookup(path).kind is FileKind.DIRECTORY
        except FileSystemError:
            return False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory.  With *parents*, create ancestors too."""
        normalized = paths.normalize(path)
        if parents:
            prefix = ""
            for component in paths.split_components(normalized):
                prefix += "/" + component
                if not self.exists(prefix):
                    self.mkdir(prefix)
            return
        parent, name = self._lookup_parent(normalized)
        assert parent.children is not None
        if name in parent.children:
            raise AlreadyExists(normalized)
        parent.children[name] = Inode.directory()

    def create(self, path: str, size: int = 0, content: Optional[str] = None,
               kind: FileKind = FileKind.REGULAR, link_target: Optional[str] = None,
               exist_ok: bool = True) -> Inode:
        """Create (or truncate-and-replace) an object at *path*."""
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None:
            if not exist_ok:
                raise AlreadyExists(path)
            if existing.kind is FileKind.DIRECTORY:
                raise IsADirectory(path)
        if kind is FileKind.DIRECTORY:
            node = Inode.directory()
        elif kind is FileKind.SYMLINK:
            node = Inode.symlink(link_target or "/")
        else:
            node = Inode(kind=kind, size=size, content=content)
            if content is not None and size == 0:
                node.size = len(content)
        node.mtime = self._clock
        if existing is not None:
            node.version = existing.version + 1
        parent.children[name] = node
        return node

    def write(self, path: str, size: Optional[int] = None, content: Optional[str] = None) -> None:
        """Modify an existing regular file (bumps its version)."""
        node = self._lookup(path)
        if node.kind is FileKind.DIRECTORY:
            raise IsADirectory(path)
        if content is not None:
            node.content = content
            node.size = len(content) if size is None else size
        elif size is not None:
            node.size = size
        node.version += 1
        node.mtime = self._clock

    def unlink(self, path: str) -> None:
        """Remove a non-directory object."""
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        node = parent.children.get(name)
        if node is None:
            raise NotFound(path)
        if node.kind is FileKind.DIRECTORY:
            raise IsADirectory(path)
        del parent.children[name]

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        node = parent.children.get(name)
        if node is None:
            raise NotFound(path)
        if node.kind is not FileKind.DIRECTORY:
            raise NotADirectory(path)
        if node.children:
            raise FileSystemError(path, f"directory not empty: {path}")
        del parent.children[name]

    def rename(self, old_path: str, new_path: str) -> None:
        """Atomically move *old_path* to *new_path* (replacing a file)."""
        old_parent, old_name = self._lookup_parent(old_path)
        assert old_parent.children is not None
        node = old_parent.children.get(old_name)
        if node is None:
            raise NotFound(old_path)
        new_parent, new_name = self._lookup_parent(new_path)
        assert new_parent.children is not None
        existing = new_parent.children.get(new_name)
        if existing is not None and existing.kind is FileKind.DIRECTORY:
            raise IsADirectory(new_path)
        del old_parent.children[old_name]
        new_parent.children[new_name] = node
        node.mtime = self._clock

    def symlink(self, target: str, link_path: str) -> None:
        """Create a symbolic link at *link_path* pointing at *target*."""
        self.create(link_path, kind=FileKind.SYMLINK, link_target=target, exist_ok=False)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def listdir(self, path: str) -> List[str]:
        """Return the sorted child names of a directory."""
        node = self._lookup(path)
        if node.kind is not FileKind.DIRECTORY:
            raise NotADirectory(path)
        assert node.children is not None
        return sorted(node.children)

    def walk(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Yield ``(absolute_path, inode)`` for every object under *path*.

        The traversal is depth-first in sorted order and does not follow
        symlinks (so it terminates even with cyclic links).
        """
        normalized = paths.normalize(path)
        node = self._lookup(normalized, follow_symlinks=False)
        yield normalized, node
        if node.kind is FileKind.DIRECTORY:
            assert node.children is not None
            base = "" if normalized == "/" else normalized
            for name in sorted(node.children):
                yield from self.walk(base + "/" + name)

    def iter_files(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Like :meth:`walk` but restricted to regular files."""
        for file_path, node in self.walk(path):
            if node.kind is FileKind.REGULAR:
                yield file_path, node

    def total_size(self, path: str = "/") -> int:
        """Sum of regular-file sizes under *path*."""
        return sum(node.size for _, node in self.iter_files(path))

    def file_count(self, path: str = "/") -> int:
        return sum(1 for _ in self.iter_files(path))

    # ------------------------------------------------------------------
    # cloning (used by replication substrates to model replicas)
    # ------------------------------------------------------------------
    def snapshot(self) -> "FileSystem":
        """Return a deep copy of this filesystem."""
        clone = FileSystem()
        clone._clock = self._clock
        clone._root = _copy_tree(self._root)
        return clone


def _copy_tree(node: Inode) -> Inode:
    copy = Inode(kind=node.kind, size=node.size, content=node.content,
                 link_target=node.link_target, version=node.version, mtime=node.mtime)
    if node.children is not None:
        copy.children = {name: _copy_tree(child) for name, child in node.children.items()}
    return copy
