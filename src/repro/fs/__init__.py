"""In-memory filesystem substrate.

SEER observes file references made against a real Unix filesystem.  This
package provides the synthetic equivalent: a hierarchical tree of inodes
(regular files, directories, symbolic links, device nodes and
pseudo-files) with Unix path semantics -- absolute/relative resolution,
``.`` and ``..`` components, symlink traversal, rename and unlink.

The filesystem is deliberately simple: it stores sizes and kinds rather
than byte contents (SEER never looks at data, only at whole-file
operations), except that small text contents can be attached for the
benefit of external investigators that parse ``#include`` lines or
makefiles.
"""

from repro.fs.filesystem import (
    FileKind,
    FileSystem,
    FileSystemError,
    Inode,
    IsADirectory,
    NotADirectory,
    NotFound,
    SymlinkLoop,
)
from repro.fs.paths import basename, dirname, directory_distance, is_absolute, join, normalize, split_components

__all__ = [
    "FileKind",
    "FileSystem",
    "FileSystemError",
    "Inode",
    "IsADirectory",
    "NotADirectory",
    "NotFound",
    "SymlinkLoop",
    "basename",
    "dirname",
    "directory_distance",
    "is_absolute",
    "join",
    "normalize",
    "split_components",
]
