"""repro: a reproduction of SEER, the automated hoarding system.

Kuenning & Popek, "Automated Hoarding for Mobile Computers", SOSP 1997.

The public API re-exports the pieces a downstream user needs:

* :class:`~repro.core.seer.Seer` -- the hoarding system itself;
* :class:`~repro.kernel.syscalls.Kernel` and
  :class:`~repro.fs.filesystem.FileSystem` -- the simulated substrate;
* the workload generator (:mod:`repro.workload`) and the simulation
  harness (:mod:`repro.simulation`) used to reproduce the paper's
  evaluation.

Quick start::

    from repro import Kernel, Seer

    kernel = Kernel()
    seer = Seer(kernel)
    # ... drive syscalls through the kernel ...
    hoard = seer.build_hoard(budget=50 * 1024 * 1024)
"""

from repro.core import (
    DEFAULT_PARAMETERS,
    ClusterSet,
    Correlator,
    HoardSelection,
    MissSeverity,
    Relation,
    Seer,
    SeerParameters,
)
from repro.fs import FileKind, FileSystem
from repro.kernel import Kernel, VirtualClock
from repro.observer import ControlConfig, MeaninglessStrategy, Observer
from repro.tracing import Operation, TraceRecord

__version__ = "1.0.0"

__all__ = [
    "ClusterSet",
    "ControlConfig",
    "Correlator",
    "DEFAULT_PARAMETERS",
    "FileKind",
    "FileSystem",
    "HoardSelection",
    "Kernel",
    "MeaninglessStrategy",
    "MissSeverity",
    "Observer",
    "Operation",
    "Relation",
    "Seer",
    "SeerParameters",
    "TraceRecord",
    "VirtualClock",
    "__version__",
]
